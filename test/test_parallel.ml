(* Pool determinism and the run_jobs journal protocol.

   The guarantees under test: results (and journal bytes) are identical
   for every pool size; consume order is exactly the sequential order;
   exceptions surface at the sequential failure point; solver code is
   safe to run on worker domains. *)

module Pool = Netrec_parallel.Pool
module Journal = Netrec_experiments.Journal
module Common = Netrec_experiments.Common
module Rng = Netrec_util.Rng
module Graph = Netrec_graph.Graph
module Instance = Netrec_core.Instance
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity

let pool jobs = Pool.create ~jobs

(* ---- Pool ---- *)

let test_map_matches_sequential () =
  let items = Array.init 100 (fun i -> i) in
  let f _ x = (x * 7) mod 13 in
  let seq = Pool.map (pool 1) f items in
  let par = Pool.map (pool 4) f items in
  Alcotest.(check (array int)) "identical results" seq par

let test_consume_in_order () =
  let order = ref [] in
  Pool.iter_ordered (pool 4)
    ~f:(fun _ x -> x * x)
    ~consume:(fun i v ->
      order := (i, v) :: !order)
    (Array.init 37 (fun i -> i));
  let got = List.rev !order in
  let expect = List.init 37 (fun i -> (i, i * i)) in
  Alcotest.(check (list (pair int int))) "sequential order" expect got

let test_exception_at_sequential_index () =
  (* f fails at 5 and 11; the caller must see index 5's exception after
     consuming exactly slots 0..4, like a sequential loop would. *)
  let consumed = ref [] in
  let boom = Failure "cell 5 failed" in
  (try
     Pool.iter_ordered (pool 4)
       ~f:(fun _ x -> if x = 5 || x = 11 then raise boom else x)
       ~consume:(fun i _ -> consumed := i :: !consumed)
       (Array.init 20 (fun i -> i));
     Alcotest.fail "expected the cell exception to propagate"
   with Failure msg ->
     Alcotest.(check string) "first failure wins" "cell 5 failed" msg);
  Alcotest.(check (list int)) "prefix consumed" [ 0; 1; 2; 3; 4 ]
    (List.rev !consumed)

let test_empty_and_singleton () =
  Pool.iter_ordered (pool 4)
    ~f:(fun _ x -> x)
    ~consume:(fun _ _ -> Alcotest.fail "no items to consume")
    [||];
  let hit = ref 0 in
  Pool.iter_ordered (pool 4)
    ~f:(fun _ x -> x + 1)
    ~consume:(fun i v ->
      Alcotest.(check (pair int int)) "singleton" (0, 42) (i, v);
      incr hit)
    [| 41 |];
  Alcotest.(check int) "consumed once" 1 !hit

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

(* ---- run_jobs ---- *)

(* Deterministic timing-free cells so journal bytes can be compared. *)
let mk_job i =
  { Common.point = Printf.sprintf "t:point=%d" (i / 3);
    run = (i mod 3) + 1;
    cells =
      (fun () ->
        [ ( "ALG",
            [ ("value", float_of_int (i * i)); ("index", float_of_int i) ] )
        ]) }

let test_run_jobs_results_order () =
  let jobs = List.init 12 mk_job in
  let seq = Common.run_jobs jobs in
  let par = Common.run_jobs ~pool:(pool 4) jobs in
  Alcotest.(check bool) "pool result = sequential result" true (seq = par);
  List.iteri
    (fun i cells ->
      match cells with
      | [ ("ALG", fields) ] ->
        Alcotest.(check (float 1e-9)) "job order kept"
          (float_of_int (i * i))
          (List.assoc "value" fields)
      | _ -> Alcotest.fail "unexpected cells shape")
    par

let with_temp_journal f =
  let path = Filename.temp_file "netrec_test_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let journal_bytes ~jobs_count ~pool_jobs =
  with_temp_journal (fun path ->
      let j = Journal.create path in
      let jobs = List.init jobs_count mk_job in
      let pool = match pool_jobs with 1 -> None | n -> Some (pool n) in
      ignore (Common.run_jobs ~journal:j ?pool jobs);
      Journal.close j;
      read_file path)

let test_journal_bytes_identical () =
  let seq = journal_bytes ~jobs_count:15 ~pool_jobs:1 in
  let par = journal_bytes ~jobs_count:15 ~pool_jobs:4 in
  Alcotest.(check string) "-j4 journal = -j1 journal" seq par

let test_journal_resume_under_pool () =
  (* Complete a prefix sequentially, resume the rest on a pool: replayed
     pairs must not recompute and the final bytes must equal a clean
     sequential run's. *)
  let clean = journal_bytes ~jobs_count:12 ~pool_jobs:1 in
  let resumed =
    with_temp_journal (fun path ->
        let j = Journal.create path in
        let jobs = List.init 12 mk_job in
        let prefix = List.filteri (fun i _ -> i < 5) jobs in
        ignore (Common.run_jobs ~journal:j prefix);
        Journal.close j;
        let j = Journal.create path in
        let computed = ref 0 in
        let spy =
          List.map
            (fun jb ->
              { jb with
                Common.cells =
                  (fun () ->
                    incr computed;
                    jb.Common.cells ()) })
            jobs
        in
        let out = Common.run_jobs ~journal:j ~pool:(pool 4) spy in
        Journal.close j;
        Alcotest.(check int) "only the pending pairs computed" 7 !computed;
        Alcotest.(check int) "all cells returned" 12 (List.length out);
        read_file path)
  in
  Alcotest.(check string) "resumed journal = clean journal" clean resumed

(* ---- solver work on worker domains ---- *)

let test_isp_across_domains () =
  (* Real solver cells (ISP on small random instances) fanned across
     four domains must reproduce the sequential solutions exactly —
     this exercises the per-domain Dijkstra scratch and Obs state. *)
  let mk seed =
    let rng = Rng.create seed in
    let g =
      Netrec_graph.Generate.erdos_renyi ~rng ~n:12 ~p:0.35 ~capacity:10.0
    in
    let n = Graph.nv g in
    let demands = [ Commodity.make ~src:0 ~dst:(n - 1) ~amount:2.0 ] in
    Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()
  in
  let insts = Array.init 6 (fun i -> mk (i + 1)) in
  let solve _ inst = fst (Netrec_core.Isp.solve inst) in
  let seq = Pool.map (pool 1) solve insts in
  let par = Pool.map (pool 4) solve insts in
  Alcotest.(check bool) "solutions identical across domains" true
    (compare seq par = 0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "netrec_parallel"
    [ ( "pool",
        [ tc "map matches sequential" `Quick test_map_matches_sequential;
          tc "consume in order" `Quick test_consume_in_order;
          tc "exception order" `Quick test_exception_at_sequential_index;
          tc "empty and singleton" `Quick test_empty_and_singleton;
          tc "default jobs" `Quick test_default_jobs_positive ] );
      ( "run_jobs",
        [ tc "results in job order" `Quick test_run_jobs_results_order;
          tc "journal bytes identical" `Quick test_journal_bytes_identical;
          tc "resume under pool" `Quick test_journal_resume_under_pool ] );
      ( "domains",
        [ tc "isp across domains" `Quick test_isp_across_domains ] ) ]
