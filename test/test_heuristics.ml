open Netrec_graph
open Netrec_core
open Netrec_heuristics
module Rng = Netrec_util.Rng
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
module Routing = Netrec_flow.Routing

let path_graph ?(capacity = 10.0) n =
  Graph.make ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1, capacity))) ()

let fixture () =
  Graph.make ~n:6
    ~edges:
      [ (0, 1, 10.0); (1, 2, 10.0); (0, 3, 10.0); (3, 4, 10.0); (4, 5, 10.0);
        (2, 5, 10.0); (1, 4, 3.0) ]
    ()

let demand ?(amount = 5.0) src dst = Commodity.make ~src ~dst ~amount

let make_inst ?vertex_cost ?edge_cost g demands failure =
  Instance.make ?vertex_cost ?edge_cost ~graph:g ~demands ~failure ()

let satisfied inst sol = Evaluate.satisfied_fraction inst sol

(* ---- SRT ---- *)

let test_srt_repairs_unique_path () =
  let g = path_graph 4 in
  let inst = make_inst g [ demand 0 3 ] (Failure.complete g) in
  let sol = Srt.solve inst in
  Alcotest.(check int) "vertices" 4 (Instance.vertex_repairs sol);
  Alcotest.(check int) "edges" 3 (Instance.edge_repairs sol);
  Alcotest.(check (float 1e-6)) "served" 1.0 (satisfied inst sol)

let test_srt_shares_saturated_path () =
  (* Two demands of 6 between the same far endpoints on a path with
     capacity 10: SRT treats them independently against nominal caps and
     repairs the single shortest path only -> 12 > 10 loses demand. *)
  let g = path_graph ~capacity:10.0 4 in
  let inst =
    make_inst g [ demand ~amount:6.0 0 3; demand ~amount:6.0 0 3 ]
      (Failure.complete g)
  in
  let sol = Srt.solve inst in
  Alcotest.(check int) "one corridor" 3 (Instance.edge_repairs sol);
  Alcotest.(check bool) "demand loss" true (satisfied inst sol < 1.0 -. 1e-6)

let test_srt_repairs_isolated_endpoints () =
  let g = path_graph 3 in
  let failure = Failure.of_lists g ~vertices:[ 0; 2 ] ~edges:[] in
  let inst = make_inst g [ demand 0 2 ] failure in
  let sol = Srt.solve inst in
  Alcotest.(check bool) "endpoints repaired" true
    (List.mem 0 sol.Instance.repaired_vertices
    && List.mem 2 sol.Instance.repaired_vertices)

let test_srt_nothing_broken () =
  let g = fixture () in
  let inst = make_inst g [ demand 0 5 ] (Failure.none g) in
  let sol = Srt.solve inst in
  Alcotest.(check int) "no repairs" 0 (Instance.total_repairs sol)

let test_srt_residual_avoids_loss () =
  (* The saturated-shared-path scenario where plain SRT loses demand:
     SRT-R routes the second demand over residual capacities and repairs
     a second corridor if one exists. *)
  let g = fixture () in
  let inst =
    make_inst g
      [ demand ~amount:10.0 0 5; demand ~amount:10.0 0 5 ]
      (Failure.complete g)
  in
  let plain = Srt.solve inst in
  let residual = Srt.solve_residual inst in
  Alcotest.(check (float 1e-6)) "SRT-R serves all" 1.0 (satisfied inst residual);
  Alcotest.(check bool) "SRT-R repairs at least as much" true
    (Instance.total_repairs residual >= Instance.total_repairs plain);
  Alcotest.(check bool) "routing valid" true (Instance.valid inst residual)

let test_srt_residual_commits_routing () =
  let g = path_graph 4 in
  let inst = make_inst g [ demand ~amount:5.0 0 3 ] (Failure.complete g) in
  let sol = Srt.solve_residual inst in
  Alcotest.(check (float 1e-6)) "routes everything" 5.0
    (Netrec_flow.Routing.total_routed sol.Instance.routing)

(* Pins the marginal-cost [else 0.0] semantics of the residual length
   function (see srt.ml): on a demand with no path at all, the length
   fallbacks must not conjure a phantom route — the demand is recorded
   with an empty path list and the shortfall is visible in the routing,
   while the repairs still certify structurally. *)
let test_srt_residual_unroutable () =
  let g =
    Graph.make ~n:4 ~edges:[ (0, 1, 10.0); (2, 3, 10.0) ] ()
  in
  let inst =
    make_inst g
      [ demand ~amount:5.0 0 1; demand ~amount:5.0 0 2 ]
      (Failure.complete g)
  in
  let sol = Srt.solve_residual inst in
  let routed_for s t =
    List.fold_left
      (fun acc a ->
        let d = a.Netrec_flow.Routing.demand in
        if d.Commodity.src = s && d.Commodity.dst = t then
          acc
          +. List.fold_left
               (fun acc (_, x) -> acc +. x)
               0.0 a.Netrec_flow.Routing.paths
        else acc)
      0.0 sol.Instance.routing
  in
  Alcotest.(check (float 1e-9)) "routable demand served" 5.0 (routed_for 0 1);
  Alcotest.(check (float 1e-9)) "unroutable demand empty" 0.0 (routed_for 0 2);
  Alcotest.(check bool) "still certifies" true
    (Netrec_check.Check.ok (Netrec_check.Check.certify inst sol))

(* ---- Path_enum ---- *)

let test_path_enum_counts_cycle () =
  (* On a 4-cycle there are exactly 2 simple paths between opposite
     vertices. *)
  let g =
    Graph.make ~n:4 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 0, 1.0) ] ()
  in
  let { Path_enum.paths; truncated; _ } =
    Path_enum.enumerate g [ demand 0 2 ]
  in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check bool) "complete" false truncated

let test_path_enum_respects_cap () =
  let g = Netrec_graph.Generate.complete ~n:7 ~capacity:1.0 in
  let { Path_enum.paths; truncated; _ } =
    Path_enum.enumerate ~max_per_pair:10 g [ demand 0 6 ]
  in
  Alcotest.(check bool) "truncated" true truncated;
  Alcotest.(check bool) "capped" true (List.length paths <= 10)

let test_path_enum_max_hops () =
  let g = path_graph 5 in
  let { Path_enum.paths; _ } =
    Path_enum.enumerate ~max_hops:2 g [ demand 0 4 ]
  in
  Alcotest.(check int) "too far" 0 (List.length paths)

let test_path_enum_paths_are_simple () =
  let g = fixture () in
  let { Path_enum.paths; _ } = Path_enum.enumerate g [ demand 0 5 ] in
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "simple" true (Paths.is_simple g 0 p))
    paths

(* ---- Greedy ---- *)

let test_grd_com_single_demand () =
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:10.0 0 5 ] (Failure.complete g) in
  let sol = Greedy.grd_com inst in
  Alcotest.(check (float 1e-6)) "served" 1.0 (satisfied inst sol);
  Alcotest.(check bool) "has routing" true (sol.Instance.routing <> []);
  Alcotest.(check bool) "valid" true (Instance.valid inst sol)

let test_grd_nc_no_loss_property () =
  (* GRD-NC stops only when the full demand is routable: no loss. *)
  let g = fixture () in
  let inst =
    make_inst g [ demand ~amount:10.0 0 5; demand ~amount:8.0 2 3 ]
      (Failure.complete g)
  in
  let sol = Greedy.grd_nc inst in
  Alcotest.(check (float 1e-6)) "served" 1.0 (satisfied inst sol)

let test_grd_nc_already_routable () =
  let g = fixture () in
  let inst = make_inst g [ demand 0 5 ] (Failure.none g) in
  let sol = Greedy.grd_nc inst in
  Alcotest.(check int) "no repairs" 0 (Instance.total_repairs sol)

let test_grd_com_not_more_than_nc () =
  (* The commitment variant repairs at most as much on this fixture. *)
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:10.0 0 5 ] (Failure.complete g) in
  let com = Greedy.grd_com inst and nc = Greedy.grd_nc inst in
  Alcotest.(check bool) "com <= nc" true
    (Instance.total_repairs com <= Instance.total_repairs nc)

(* ---- Postpass ---- *)

let test_postpass_drops_redundant () =
  let g = path_graph 3 in
  let inst = make_inst g [ demand 0 2 ] (Failure.complete g) in
  (* Start from repairing everything; pruning must keep only the path. *)
  let pruned = Postpass.prune inst (Instance.repair_all inst) in
  Alcotest.(check int) "minimal" 5 (Instance.total_repairs pruned);
  Alcotest.(check (float 1e-6)) "still feasible" 1.0 (satisfied inst pruned)

let test_postpass_keeps_needed () =
  let g = path_graph 3 in
  let inst = make_inst g [ demand 0 2 ] (Failure.complete g) in
  let minimal =
    { Instance.repaired_vertices = [ 0; 1; 2 ];
      repaired_edges = [ 0; 1 ];
      routing = Routing.empty }
  in
  let pruned = Postpass.prune inst minimal in
  Alcotest.(check int) "unchanged" 5 (Instance.total_repairs pruned)

let test_postpass_infeasible_input_unchanged () =
  let g = path_graph 3 in
  let inst = make_inst g [ demand 0 2 ] (Failure.complete g) in
  let bad =
    { Instance.repaired_vertices = [ 0 ];
      repaired_edges = [];
      routing = Routing.empty }
  in
  let out = Postpass.prune inst bad in
  Alcotest.(check int) "unchanged" 1 (Instance.total_repairs out)

(* ---- Opt (MILP) ---- *)

let test_opt_path_exact () =
  let g = path_graph 3 in
  let inst = make_inst g [ demand 0 2 ] (Failure.complete g) in
  let r = Opt.solve ~node_limit:200 inst in
  Alcotest.(check bool) "proved" true r.Opt.proved;
  Alcotest.(check int) "3 vertices + 2 edges" 5
    (Instance.total_repairs r.Opt.solution);
  Alcotest.(check (float 1e-6)) "served" 1.0 (satisfied inst r.Opt.solution)

let test_opt_picks_cheap_route () =
  (* Two disjoint 2-hop routes, one with an expensive relay: OPT takes
     the cheap one. *)
  let g =
    Graph.make ~n:4 ~edges:[ (0, 1, 10.0); (1, 3, 10.0); (0, 2, 10.0); (2, 3, 10.0) ] ()
  in
  let vertex_cost = [| 1.0; 10.0; 1.0; 1.0 |] in
  let inst = make_inst ~vertex_cost g [ demand 0 3 ] (Failure.complete g) in
  let r = Opt.solve ~node_limit:500 inst in
  Alcotest.(check bool) "avoids relay 1" false
    (List.mem 1 r.Opt.solution.Instance.repaired_vertices);
  Alcotest.(check (float 1e-6)) "cost" 5.0 r.Opt.objective

let test_opt_no_worse_than_incumbent () =
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:10.0 0 5 ] (Failure.complete g) in
  let isp, _ = Isp.solve inst in
  let r = Opt.solve ~node_limit:50 ~incumbent:isp inst in
  Alcotest.(check bool) "not worse" true
    (Instance.total_repairs r.Opt.solution <= Instance.total_repairs isp)

let test_opt_proxy_on_oversize () =
  let g = fixture () in
  let inst = make_inst g [ demand 0 5 ] (Failure.complete g) in
  let r = Opt.solve ~var_budget:2 inst in
  Alcotest.(check bool) "proxy not proved" false r.Opt.proved;
  Alcotest.(check int) "no nodes" 0 r.Opt.nodes;
  Alcotest.(check (float 1e-6)) "still feasible" 1.0
    (satisfied inst r.Opt.solution)

let test_opt_partial_failure () =
  (* Only one edge of the working path is broken; OPT repairs exactly
     what is needed. *)
  let g = path_graph 4 in
  let failure = Failure.of_lists g ~vertices:[] ~edges:[ 1 ] in
  let inst = make_inst g [ demand 0 3 ] failure in
  let r = Opt.solve ~node_limit:100 inst in
  Alcotest.(check int) "one edge" 1 (Instance.total_repairs r.Opt.solution)

let opt_bounded_by_isp_prop =
  QCheck.Test.make ~name:"opt never worse than isp" ~count:8 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:10 ~p:0.35 ~capacity:8.0
      in
      if not (Traverse.is_connected g) then true
      else begin
        let inst =
          make_inst g
            [ Commodity.make ~src:0 ~dst:(Graph.nv g - 1) ~amount:4.0 ]
            (Failure.complete g)
        in
        let isp, _ = Isp.solve inst in
        let r = Opt.solve ~node_limit:60 ~incumbent:isp inst in
        Instance.total_repairs r.Opt.solution <= Instance.total_repairs isp
        && satisfied inst r.Opt.solution >= 1.0 -. 1e-6
      end)

(* ---- Mcf_heuristic ---- *)

let test_mcf_orders () =
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:10.0 0 5 ] (Failure.complete g) in
  match Mcf_heuristic.solve inst with
  | Some r ->
    let mcb = Instance.total_repairs r.Mcf_heuristic.mcb in
    let mcw = Instance.total_repairs r.Mcf_heuristic.mcw in
    let sup = Instance.total_repairs r.Mcf_heuristic.support in
    Alcotest.(check bool) "mcb <= support" true (mcb <= sup);
    Alcotest.(check bool) "support <= mcw" true (sup <= mcw);
    Alcotest.(check bool) "positive objective" true
      (r.Mcf_heuristic.lp_objective > 0.0)
  | None -> Alcotest.fail "expected a solution"

let test_mcf_infeasible () =
  let g = path_graph ~capacity:1.0 3 in
  let inst = make_inst g [ demand ~amount:5.0 0 2 ] (Failure.complete g) in
  Alcotest.(check bool) "none" true (Mcf_heuristic.solve inst = None)

let test_mcf_mcb_feasible () =
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:10.0 0 5 ] (Failure.complete g) in
  match Mcf_heuristic.solve inst with
  | Some r ->
    Alcotest.(check (float 1e-6)) "mcb serves all" 1.0
      (satisfied inst r.Mcf_heuristic.mcb)
  | None -> Alcotest.fail "expected a solution"

(* ---- Steiner ---- *)

let test_steiner_forest_single_pair () =
  let g = path_graph 4 in
  let f = Steiner.forest g ~weight:(fun _ -> 1.0) ~pairs:[ (0, 3) ] in
  Alcotest.(check int) "whole path" 3 (List.length f)

let test_steiner_forest_two_pairs_disjoint () =
  let g = path_graph 6 in
  (* Pairs (0,1) and (4,5): two disjoint single edges. *)
  let f = Steiner.forest g ~weight:(fun _ -> 1.0) ~pairs:[ (0, 1); (4, 5) ] in
  Alcotest.(check int) "two edges" 2 (List.length f)

let test_steiner_forest_connects () =
  let rng = Rng.create 3 in
  let g = Netrec_graph.Generate.erdos_renyi ~rng ~n:20 ~p:0.2 ~capacity:1.0 in
  let pairs = [ (0, 19); (1, 18) ] in
  let connected_pairs =
    List.filter (fun (s, t) -> Traverse.reachable g s t) pairs
  in
  let f = Steiner.forest g ~weight:(fun _ -> 1.0) ~pairs in
  let in_forest = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace in_forest e ()) f;
  List.iter
    (fun (s, t) ->
      Alcotest.(check bool) "pair connected in forest" true
        (Traverse.reachable ~edge_ok:(Hashtbl.mem in_forest) g s t))
    connected_pairs

let test_steiner_forest_ignores_disconnected () =
  let g = Graph.make ~n:4 ~edges:[ (0, 1, 1.0) ] () in
  let f = Steiner.forest g ~weight:(fun _ -> 1.0) ~pairs:[ (2, 3) ] in
  Alcotest.(check int) "empty" 0 (List.length f)

let test_steiner_recovery_connectivity () =
  let g = fixture () in
  let inst = make_inst g [ demand ~amount:1.0 0 5 ] (Failure.complete g) in
  let sol = Steiner.recovery inst in
  Alcotest.(check bool) "valid" true (Instance.valid inst sol);
  (* With a 1-unit demand, connectivity implies full service. *)
  Alcotest.(check (float 1e-6)) "served" 1.0 (satisfied inst sol)

let steiner_2approx_prop =
  QCheck.Test.make ~name:"GW forest within 2x of DP optimum" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 11) in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:16 ~p:0.25 ~capacity:1.0
      in
      if not (Traverse.is_connected g) then true
      else begin
        let pairs = [ (0, 15); (1, 14) ] in
        let f = Steiner.forest g ~weight:(fun _ -> 1.0) ~pairs in
        (* Compare edge counts against the exact Steiner forest using the
           DP (via optimal_total_repairs = 2E* + #groups). *)
        match Exact_forest.optimal_total_repairs g ~pairs with
        | None -> true
        | Some total ->
          (* total = 2 E* + groups, groups in {1,2} -> E* >= (total-2)/2 *)
          let estar_min = (total - 2) / 2 in
          List.length f <= max 1 (2 * max 1 estar_min) + 2
      end)

(* ---- Exact_forest ---- *)

let test_exact_forest_path () =
  let g = path_graph 5 in
  Alcotest.(check (option int)) "tree hops"
    (Some 4)
    (Exact_forest.steiner_tree_hops g ~terminals:[ 0; 4 ]);
  Alcotest.(check (option int)) "repairs = 2*4+1"
    (Some 9)
    (Exact_forest.optimal_total_repairs g ~pairs:[ (0, 4) ])

let test_exact_forest_star () =
  (* Star with 3 leaves: spanning all three terminals needs all 3 edges. *)
  let g =
    Graph.make ~n:4 ~edges:[ (0, 1, 1.0); (0, 2, 1.0); (0, 3, 1.0) ] ()
  in
  Alcotest.(check (option int)) "steiner point used"
    (Some 3)
    (Exact_forest.steiner_tree_hops g ~terminals:[ 1; 2; 3 ])

let test_exact_forest_partition_beats_tree () =
  (* Two far-apart pairs on a long path: separate components win. *)
  let g = path_graph 10 in
  (* pairs (0,1) and (8,9): optimal = two single-edge trees = 2*(2*1+1)=6,
     while one tree spanning all four costs 2*9+1 = 19. *)
  Alcotest.(check (option int)) "forest splits"
    (Some 6)
    (Exact_forest.optimal_total_repairs g ~pairs:[ (0, 1); (8, 9) ])

let test_exact_forest_shared_endpoint_merged () =
  let g = path_graph 5 in
  (* (0,2) and (2,4) share vertex 2: single component, tree edges 4. *)
  Alcotest.(check (option int)) "merged"
    (Some 9)
    (Exact_forest.optimal_total_repairs g ~pairs:[ (0, 2); (2, 4) ])

let test_exact_forest_disconnected () =
  let g = Graph.make ~n:4 ~edges:[ (0, 1, 1.0) ] () in
  Alcotest.(check (option int)) "none" None
    (Exact_forest.optimal_total_repairs g ~pairs:[ (2, 3) ])

let test_exact_forest_clique_trivial () =
  (* The paper's p=1 observation: on a clique with 5 disjoint unit pairs
     every algorithm finds the trivial solution of 15 repairs
     (2 endpoints + 1 edge per pair). *)
  let g = Netrec_graph.Generate.complete ~n:12 ~capacity:1000.0 in
  let pairs = [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9) ] in
  Alcotest.(check (option int)) "trivial 15" (Some 15)
    (Exact_forest.optimal_total_repairs g ~pairs)

let test_opt_nothing_broken () =
  let g = path_graph 3 in
  let inst = make_inst g [ demand 0 2 ] (Failure.none g) in
  let r = Opt.solve ~node_limit:50 inst in
  Alcotest.(check (float 1e-9)) "zero cost" 0.0 r.Opt.objective;
  Alcotest.(check int) "no repairs" 0 (Instance.total_repairs r.Opt.solution)

let test_greedy_nothing_broken () =
  let g = fixture () in
  let inst = make_inst g [ demand 0 5 ] (Failure.none g) in
  Alcotest.(check int) "grd-com idle" 0
    (Instance.total_repairs (Greedy.grd_com inst));
  Alcotest.(check int) "grd-nc idle" 0
    (Instance.total_repairs (Greedy.grd_nc inst))

let test_mcf_partial_failure_minimal () =
  (* Only one edge of the unique path is broken: the relaxation's support
     must be exactly that edge (plus no vertices). *)
  let g = path_graph 4 in
  let failure = Failure.of_lists g ~vertices:[] ~edges:[ 1 ] in
  let inst = make_inst g [ demand ~amount:5.0 0 3 ] failure in
  match Mcf_heuristic.solve inst with
  | Some r ->
    Alcotest.(check int) "one repair" 1
      (Instance.total_repairs r.Mcf_heuristic.support);
    Alcotest.(check int) "mcb same" 1 (Instance.total_repairs r.Mcf_heuristic.mcb)
  | None -> Alcotest.fail "expected a solution"

let test_postpass_prunes_steiner_extra () =
  (* Give the postpass a solution with one obviously useless repair. *)
  let g = fixture () in
  let inst =
    make_inst g [ demand ~amount:5.0 0 2 ]
      (Failure.of_lists g ~vertices:[ 1; 4 ] ~edges:[])
  in
  (* Repairing both 1 and 4 is overkill: 0-1-2 works with just vertex 1. *)
  let fat =
    { Instance.repaired_vertices = [ 1; 4 ];
      repaired_edges = [];
      routing = Netrec_flow.Routing.empty }
  in
  let slim = Postpass.prune inst fat in
  Alcotest.(check int) "one vertex suffices" 1 (Instance.total_repairs slim)

let test_exact_forest_matches_milp () =
  (* Cross-check the DP against the MILP on small connectivity-only
     instances. *)
  let rng = Rng.create 5 in
  for _ = 1 to 3 do
    let g =
      Netrec_graph.Generate.erdos_renyi ~rng:(Rng.split rng) ~n:9 ~p:0.35
        ~capacity:100.0
    in
    if Traverse.is_connected g then begin
      let pairs = [ (0, 8); (1, 7) ] in
      let demands =
        List.map (fun (s, t) -> Commodity.make ~src:s ~dst:t ~amount:1.0) pairs
      in
      let inst = make_inst g demands (Failure.complete g) in
      let milp = Opt.solve ~node_limit:4000 inst in
      let dp = Exact_forest.optimal_total_repairs g ~pairs in
      if milp.Opt.proved then
        Alcotest.(check (option int))
          "dp = milp"
          (Some (Instance.total_repairs milp.Opt.solution))
          dp
    end
  done

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netrec_heuristics"
    [ ( "srt",
        [ tc "unique path" test_srt_repairs_unique_path;
          tc "saturated shared path" test_srt_shares_saturated_path;
          tc "isolated endpoints" test_srt_repairs_isolated_endpoints;
          tc "nothing broken" test_srt_nothing_broken;
          tc "residual avoids loss" test_srt_residual_avoids_loss;
          tc "residual commits routing" test_srt_residual_commits_routing;
          tc "srt residual unroutable" test_srt_residual_unroutable ] );
      ( "path_enum",
        [ tc "cycle counts" test_path_enum_counts_cycle;
          tc "respects cap" test_path_enum_respects_cap;
          tc "max hops" test_path_enum_max_hops;
          tc "paths simple" test_path_enum_paths_are_simple ] );
      ( "greedy",
        [ tc "grd-com single" test_grd_com_single_demand;
          tc "grd-nc no loss" test_grd_nc_no_loss_property;
          tc "grd-nc already routable" test_grd_nc_already_routable;
          tc "com <= nc" test_grd_com_not_more_than_nc;
          tc "nothing broken" test_greedy_nothing_broken ] );
      ( "postpass",
        [ tc "drops redundant" test_postpass_drops_redundant;
          tc "keeps needed" test_postpass_keeps_needed;
          tc "infeasible unchanged" test_postpass_infeasible_input_unchanged;
          tc "prunes extra vertex" test_postpass_prunes_steiner_extra ] );
      ( "opt",
        [ tc "path exact" test_opt_path_exact;
          tc "picks cheap route" test_opt_picks_cheap_route;
          tc "no worse than incumbent" test_opt_no_worse_than_incumbent;
          tc "proxy on oversize" test_opt_proxy_on_oversize;
          tc "partial failure" test_opt_partial_failure;
          tc "nothing broken" test_opt_nothing_broken;
          QCheck_alcotest.to_alcotest opt_bounded_by_isp_prop ] );
      ( "mcf_heuristic",
        [ tc "orders" test_mcf_orders;
          tc "infeasible" test_mcf_infeasible;
          tc "mcb feasible" test_mcf_mcb_feasible;
          tc "partial failure minimal" test_mcf_partial_failure_minimal ] );
      ( "steiner",
        [ tc "single pair" test_steiner_forest_single_pair;
          tc "two pairs disjoint" test_steiner_forest_two_pairs_disjoint;
          tc "connects" test_steiner_forest_connects;
          tc "ignores disconnected" test_steiner_forest_ignores_disconnected;
          tc "recovery connectivity" test_steiner_recovery_connectivity;
          QCheck_alcotest.to_alcotest steiner_2approx_prop ] );
      ( "exact_forest",
        [ tc "path" test_exact_forest_path;
          tc "star" test_exact_forest_star;
          tc "partition beats tree" test_exact_forest_partition_beats_tree;
          tc "shared endpoint merged" test_exact_forest_shared_endpoint_merged;
          tc "disconnected" test_exact_forest_disconnected;
          tc "clique trivial" test_exact_forest_clique_trivial;
          tc "matches milp" test_exact_forest_matches_milp ] ) ]
