(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Figs. 3-7 and 9; Figs. 1, 2, 8 are illustrations and
   Table I is notation) and runs one Bechamel micro-benchmark per
   table/figure family.

   Usage:
     main.exe               benches + all figures (default settings)
     main.exe quick         benches + all figures (1 run/point, small OPT budget)
     main.exe bench         Bechamel micro-benchmarks only
     main.exe serve         daemon load generator only (16 clients)
     main.exe fig3 ... fig9 a single figure
     main.exe figures       all figures, no micro-benchmarks *)

module G = Netrec_graph.Graph
module Rng = Netrec_util.Rng
module Table = Netrec_util.Table
module Obs = Netrec_obs.Obs
module Failure = Netrec_disrupt.Failure
module Instance = Netrec_core.Instance
module E = Netrec_experiments

(* ---- Bechamel micro-benchmarks: one Test.make per figure family ---- *)

let bell_canada_instance () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 1 in
  let demands = E.Common.feasible_demands ~rng ~count:4 ~amount:10.0 g in
  Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()

let gaussian_instance () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 2 in
  let demands = E.Common.feasible_demands ~rng ~count:4 ~amount:10.0 g in
  let failure = Netrec_disrupt.Models.gaussian ~rng ~variance:70.0 g in
  Instance.make ~graph:g ~demands ~failure ()

let er_instance () =
  let rng = Rng.create 3 in
  let g =
    Netrec_graph.Generate.erdos_renyi ~rng ~n:100 ~p:0.3 ~capacity:1000.0
  in
  let demands =
    E.Common.feasible_demands ~rng ~distinct:true ~count:5 ~amount:1.0 g
  in
  (g, Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ())

let caida_instance () =
  let g = Netrec_topo.Caida.graph () in
  let rng = Rng.create 4 in
  let demands =
    E.Common.feasible_demands ~rng ~distinct:true ~count:4 ~amount:22.0 g
  in
  Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()

let micro_benchmarks () =
  let open Bechamel in
  let bc = bell_canada_instance () in
  let gauss = gaussian_instance () in
  let er_g, er = er_instance () in
  let caida = caida_instance () in
  let xl_smoke = E.Fig9_xl.smoke_scenario () in
  let er_pairs =
    List.map
      (fun d -> (d.Netrec_flow.Commodity.src, d.Netrec_flow.Commodity.dst))
      er.Instance.demands
  in
  let tests =
    [ Test.make ~name:"fig3:mcf-relaxation-lp" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Mcf_heuristic.solve bc)));
      Test.make ~name:"fig4:isp-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve bc)));
      Test.make ~name:"fig4:grd-com-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Greedy.grd_com bc)));
      Test.make ~name:"fig5:srt-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Srt.solve bc)));
      Test.make ~name:"fig6:isp-gaussian" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve gauss)));
      Test.make ~name:"fig7:isp-erdos-renyi" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve er)));
      Test.make ~name:"fig7:steiner-forest-dp" (Staged.stage (fun () ->
          ignore
            (Netrec_heuristics.Exact_forest.optimal_total_repairs er_g
               ~pairs:er_pairs)));
      Test.make ~name:"fig9:isp-caida" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve caida)));
      (* Complete destruction covers the whole graph, so the sharded
         solver delegates here: this measures the delegation overhead
         against fig9:isp-caida (acceptance: within 10%, identical
         cost). *)
      Test.make ~name:"fig9:shard-caida" (Staged.stage (fun () ->
          ignore (Netrec_shard.Shard.solve caida)));
      (* The pinned 5k scale-free Gaussian scenario on the sharded
         path: the time/run behind the xl_gate counters. *)
      Test.make ~name:"fig9-xl:shard-synth-5k" (Staged.stage (fun () ->
          ignore (Netrec_shard.Shard.solve xl_smoke)));
      (* Greedy + local search on the pinned scheduling smoke scenario:
         the time/run behind the sched_gate counters. *)
      Test.make ~name:"sched:greedy-ls-smoke" (Staged.stage (fun () ->
          let module Sched = Netrec_sched.Sched in
          let inst = E.Fig_sched.smoke_scenario () in
          let cap = Sched.capacity ~crews:E.Fig_sched.smoke_crews () in
          let greedy = Sched.greedy ~cap inst (Instance.repair_all inst) in
          ignore (Sched.local_search ~cap inst (Sched.order_of greedy))));
      Test.make ~name:"opt:bell-canada-gaussian" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Opt.solve gauss)));
      Test.make ~name:"mcf-lp:feasible-bell-canada" (Staged.stage (fun () ->
          ignore
            (Netrec_flow.Mcf_lp.feasible
               ~cap:(G.capacity bc.Instance.graph)
               bc.Instance.graph bc.Instance.demands))) ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ clock ] test in
      let analyzed = Analyze.all ols clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (v :: _) -> v
            | Some [] | None -> nan
          in
          let ms = ns /. 1e6 in
          Printf.printf "  %-28s %12.3f ms/run\n%!" name ms;
          collected := (name, ms) :: !collected)
        analyzed)
    tests;
  print_newline ();
  List.rev !collected

(* ---- daemon load generator ---- *)

module Server = Netrec_serve.Server
module Client = Netrec_serve.Client
module Protocol = Netrec_serve.Protocol
module Inject = Netrec_serve.Inject

(* Deterministic query mix over the Abilene topology: every client
   issues the same (seeded) stream of broken-set/demand variants, a
   quarter of which repeat one fixed disaster so the plan cache gets
   hits, under mild fault injection so the breaker/shed path is also on
   the measured profile. *)
let serve_query ~nv ~ne ci qi =
  if (ci + qi) mod 4 = 0 then
    { Protocol.algorithm = Protocol.Isp;
      deadline_s = Some 10.0;
      no_cache = false;
      demands = [ (0, nv - 1, 2.0) ];
      broken_vertices = [ 1 ];
      broken_edges = [ 0; 1 ] }
  else begin
    let rng = Rng.create (0x5eed + (ci * 131) + qi) in
    let algorithm =
      match qi mod 3 with
      | 0 -> Protocol.Isp
      | 1 -> Protocol.Fallback
      | _ -> Protocol.Grd_com
    in
    let src = Rng.int rng nv in
    let dst = (src + 1 + Rng.int rng (nv - 1)) mod nv in
    let broken_v =
      List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng nv)
      |> List.filter (fun v -> v <> src && v <> dst)
    in
    let broken_e = List.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng ne) in
    { Protocol.algorithm;
      deadline_s = Some 10.0;
      no_cache = false;
      demands = [ (src, dst, 1.0 +. Rng.float rng 2.0) ];
      broken_vertices = broken_v;
      broken_edges = broken_e }
  end

let serve_bench ?(clients = 8) ?(per_client = 24) () =
  let g = Netrec_topo.Abilene.graph () in
  let nv = G.nv g and ne = G.ne g in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "netrec-bench-%d.sock" (Unix.getpid ()))
  in
  let address = Server.Unix_socket path in
  let inject =
    match Inject.parse "fail=0.03,slow_ms=2,slow_rate=0.2,seed=11" with
    | Ok t -> t
    | Error msg -> failwith msg
  in
  let cfg =
    { (Server.default_config address) with
      Server.jobs = 2;
      queue_cap = 128;
      inject;
      log = ignore }
  in
  let server = Server.start cfg g in
  let lat = Array.make (clients * per_client) nan in
  let ok = Atomic.make 0
  and err = Atomic.make 0
  and hits = Atomic.make 0
  and shed = Atomic.make 0 in
  let client ci =
    match Client.connect address with
    | Error e -> failwith (Client.error_to_string e)
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for qi = 0 to per_client - 1 do
            let q = serve_query ~nv ~ne ci qi in
            let t0 = Unix.gettimeofday () in
            (match Client.query c q with
            | Ok (Protocol.Ok_plan r) ->
              Atomic.incr ok;
              if r.Protocol.cached then Atomic.incr hits;
              if r.Protocol.shed then Atomic.incr shed
            | Ok (Protocol.Error _) -> Atomic.incr err
            | Ok _ | Error _ -> Atomic.incr err);
            lat.((ci * per_client) + qi) <-
              1000.0 *. (Unix.gettimeofday () -. t0)
          done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun ci -> Thread.create client ci) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Server.stop server;
  Server.wait server;
  (* Latencies were measured client-side; they enter the collector here,
     from the main thread, after every server thread is joined — the
     per-domain Obs state never sees concurrent writers. *)
  Array.iter
    (fun ms -> if not (Float.is_nan ms) then Obs.observe "serve.client_latency_ms" ms)
    lat;
  let total = clients * per_client in
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let q p = sorted.(min (total - 1) (int_of_float (p *. float_of_int total))) in
  Printf.printf
    "== Daemon load generator (%d clients x %d queries, inject on) ==\n" clients
    per_client;
  Printf.printf
    "  %d ok (%d cached, %d shed)  %d structured error(s)  in %.2f s  \
     (%.0f req/s)\n"
    (Atomic.get ok) (Atomic.get hits) (Atomic.get shed) (Atomic.get err)
    elapsed
    (float_of_int total /. elapsed);
  Printf.printf "  client latency: p50 %.2f ms  p90 %.2f ms  p99 %.2f ms\n\n%!"
    (q 0.5) (q 0.9) (q 0.99)

(* ---- figure regeneration ---- *)

type settings = { runs : int; opt_nodes : int; jobs : int }

(* Two domains by default: exercises the deterministic pool (and records
   its counters in BENCH_metrics.json) while staying cheap on small
   machines.  Tables and journal bytes are identical for any [jobs]. *)
let default = { runs = 3; opt_nodes = 800; jobs = 2 }
let quick = { runs = 1; opt_nodes = 60; jobs = 2 }

(* Print each table and also drop it as CSV under results/ so the series
   can be re-plotted without re-running anything. *)
let emit_tables fig tables =
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iteri
    (fun i t ->
      Table.print t;
      let path = Printf.sprintf "results/%s_%d.csv" fig (i + 1) in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      output_char oc '\n';
      close_out oc)
    tables

let run_figure s fig =
  let pool = E.Common.Pool.create ~jobs:s.jobs in
  match fig with
  | "fig3" -> emit_tables "fig3" (E.Fig3.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig4" -> emit_tables "fig4" (E.Fig4.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig5" -> emit_tables "fig5" (E.Fig5.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig6" -> emit_tables "fig6" (E.Fig6.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig7" -> emit_tables "fig7" (E.Fig7.run ~pool ~runs:s.runs ())
  | "fig9" -> emit_tables "fig9" (E.Fig9.run ~pool ~runs:s.runs ())
  | "fig9-xl" ->
    emit_tables "fig9_xl"
      (E.Fig9_xl.run ~pool ~runs:(min 2 s.runs)
         ~sizes:(if s.runs = 1 then [ 20_000; 100_000 ] else E.Fig9_xl.default_sizes)
         ())
  | "fig-sched" ->
    emit_tables "fig_sched" (E.Fig_sched.run ~pool ~runs:s.runs ())
  | "fig-opt" ->
    emit_tables "fig_opt" (E.Fig_opt.run ~pool ~runs:s.runs ())
  | "ablation" -> emit_tables "ablation" (E.Ablation.run ~runs:s.runs ())
  | other -> Printf.eprintf "unknown figure %S\n" other

let all_figures =
  [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig9"; "fig9-xl"; "fig-sched";
    "fig-opt"; "ablation" ]

let run_all s =
  List.iter
    (fun fig ->
      let g0 = Obs.gc_snapshot () in
      let (), secs = Obs.timed ("bench." ^ fig) (fun () -> run_figure s fig) in
      let d = Obs.gc_delta g0 (Obs.gc_snapshot ()) in
      Printf.printf
        "(%s regenerated in %.1f s; gc: %.1f Mw minor, %.1f Mw major, %d \
         compaction(s))\n\n\
         %!"
        fig secs
        (d.Obs.minor_words /. 1e6)
        (d.Obs.major_words /. 1e6)
        d.Obs.gc_compactions)
    all_figures;
  (* The solver-progress trajectories (residual demand, incumbents,
     bounds) behind the figures, for plot_results.gp. *)
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Obs.write_events "results/progress.jsonl";
  Printf.printf "wrote results/progress.jsonl\n%!"

(* Deterministic LP work gate: exact counter deltas for one full OPT
   solve of the gaussian Bell Canada scenario.  Unlike the wall-clock
   micro-benchmarks these integers are machine-independent, so CI can
   hold the line on simplex/branch-and-bound work regressions exactly. *)
let lp_gate_metrics () =
  let inst = gaussian_instance () in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let keys =
    [ "simplex.pivots"; "simplex.bound_flips"; "simplex.solves";
      "simplex.warm_starts"; "simplex.phase1_skipped";
      "simplex.dse_pivots"; "simplex.dse_resets"; "milp.nodes";
      "milp.nodes_pruned"; "presolve.runs"; "presolve.vars_fixed";
      "presolve.rows_dropped"; "presolve.bounds_tightened";
      "presolve.coefs_tightened"; "cuts.separated"; "cuts.added";
      "cuts.rejected"; "cuts.root_solves"; "cuts.aged_out" ]
  in
  let before = List.map (fun k -> (k, Obs.counter_value k)) keys in
  let r = Netrec_heuristics.Opt.solve inst in
  let deltas = List.map (fun (k, v) -> (k, Obs.counter_value k - v)) before in
  Obs.set_enabled was;
  ("opt.proved", if r.Netrec_heuristics.Opt.proved then 1 else 0)
  :: ("opt.nodes", r.Netrec_heuristics.Opt.nodes)
  :: deltas

(* Deterministic xl work gate: the sharded solver on the pinned 5k
   scale-free Gaussian smoke scenario.  Shard/cut/fixup counts, sampled
   centrality work and the certificate are machine-independent integers,
   so CI can hold the line on both sharding-shape and correctness
   regressions exactly (check.violations must stay 0). *)
let xl_gate_metrics () =
  let inst = E.Fig9_xl.smoke_scenario () in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let keys = [ "centrality.sampled_recomputed"; "centrality.sampled_skipped" ] in
  let before = List.map (fun k -> (k, Obs.counter_value k)) keys in
  let sol, st = Netrec_shard.Shard.solve inst in
  let deltas = List.map (fun (k, v) -> (k, Obs.counter_value k - v)) before in
  Obs.set_enabled was;
  let module Shard = Netrec_shard.Shard in
  [ ("xl.certified", if Netrec_check.Check.ok st.Shard.certificate then 1 else 0);
    ("check.violations", List.length st.Shard.certificate.Netrec_check.Check.violations);
    ("xl.repairs_total", Instance.total_repairs sol);
    ("isp.shard_count", st.Shard.shards);
    ("isp.shard_region_vertices", st.Shard.region_vertices);
    ("isp.shard_cut_demands", st.Shard.cut_demands);
    ("isp.shard_fixup_paths", st.Shard.fixup_paths);
    ("isp.shard_delegated", if st.Shard.delegated then 1 else 0) ]
  @ deltas

(* Deterministic scheduling gate: greedy, greedy + local search and the
   MILP oracle on the pinned two-corridor smoke scenario.  AUC and
   regret enter as microunits so the block stays integer-valued like
   the other gates; scripts/check_sched.sh asserts that the oracle
   proves optimality, the refined plan stays within 5% regret
   (sched.regret_microunits <= 50_000) and every round certifies. *)
let sched_gate_metrics () =
  let module Sched = Netrec_sched.Sched in
  let inst = E.Fig_sched.smoke_scenario () in
  let cap = Sched.capacity ~crews:E.Fig_sched.smoke_crews () in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let keys =
    [ "sched.plans"; "sched.rounds"; "sched.evals"; "sched.ls_passes";
      "sched.moves_tried"; "sched.moves_applied"; "sched.oracle_solves";
      "sched.oracle_nodes" ]
  in
  let before = List.map (fun k -> (k, Obs.counter_value k)) keys in
  let greedy = Sched.greedy ~cap inst (Instance.repair_all inst) in
  let refined, _ = Sched.local_search ~cap inst (Sched.order_of greedy) in
  let oracle =
    match Sched.oracle ~cap inst (E.Fig_sched.smoke_elements ()) with
    | Ok r -> r
    | Error _ -> failwith "sched gate: oracle refused the smoke scenario"
  in
  let deltas = List.map (fun (k, v) -> (k, Obs.counter_value k - v)) before in
  Obs.set_enabled was;
  let micro x = int_of_float (Float.round (1e6 *. x)) in
  let certified =
    List.for_all Netrec_check.Check.ok (Sched.certify_rounds inst refined)
  in
  [ ("sched.oracle_proved", if oracle.Sched.proved then 1 else 0);
    ("sched.plan_rounds", List.length refined.Sched.rounds);
    ("sched.greedy_auc_microunits", micro greedy.Sched.auc);
    ("sched.ls_auc_microunits", micro refined.Sched.auc);
    ("sched.oracle_auc_microunits", micro oracle.Sched.plan.Sched.auc);
    ( "sched.regret_microunits",
      micro (Sched.regret ~oracle:oracle.Sched.plan refined) );
    ("sched.certified", if certified then 1 else 0) ]
  @ deltas

(* Machine-readable run record: micro-benchmark estimates, the
   deterministic LP, xl and sched work gates, plus the full counter/
   gauge/histogram/span/progress snapshot of the figure regeneration. *)
let write_bench_metrics ~mode ~benchmarks =
  let lp_gate = lp_gate_metrics () in
  let xl_gate = xl_gate_metrics () in
  let sched_gate = sched_gate_metrics () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"netrec-bench-metrics/2\",";
  Printf.bprintf buf "\"mode\":\"%s\",\"benchmarks\":{" mode;
  List.iteri
    (fun i (name, ms) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%.6f" name ms)
    benchmarks;
  Buffer.add_string buf "},\"lp_gate\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" name v)
    lp_gate;
  Buffer.add_string buf "},\"xl_gate\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" name v)
    xl_gate;
  Buffer.add_string buf "},\"sched_gate\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" name v)
    sched_gate;
  Buffer.add_string buf "},\"metrics\":";
  Buffer.add_string buf (Obs.metrics_json ());
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_metrics.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_metrics.json\n%!"

(* The xl smoke run behind scripts/check_xl.sh: solve the pinned 5k
   scale-free Gaussian scenario on the sharded solver with a -jN pool
   and print only deterministic facts (no wall clock), so the script
   can diff -j1 against -j4 byte-for-byte and grep the certificate. *)
let xl_smoke ~jobs =
  let inst = E.Fig9_xl.smoke_scenario () in
  let pool = E.Common.Pool.create ~jobs in
  let sol, st = Netrec_shard.Shard.solve ~pool inst in
  let module Shard = Netrec_shard.Shard in
  let ids l = String.concat "," (List.map string_of_int (List.sort compare l)) in
  Printf.printf "xl-smoke: n=%d ne=%d demands=%d\n"
    (G.nv inst.Instance.graph) (G.ne inst.Instance.graph)
    (List.length inst.Instance.demands);
  Printf.printf
    "region=%d shards=%d cut=%d fixup=%d delegated=%b\n"
    st.Shard.region_vertices st.Shard.shards st.Shard.cut_demands
    st.Shard.fixup_paths st.Shard.delegated;
  Printf.printf "repaired_vertices=[%s]\nrepaired_edges=[%s]\n"
    (ids sol.Instance.repaired_vertices)
    (ids sol.Instance.repaired_edges);
  Printf.printf "repair_cost=%.6f\n" (Instance.repair_cost inst sol);
  Printf.printf "satisfied=%.6f\n"
    (Netrec_core.Evaluate.satisfied_fraction inst sol);
  Printf.printf "violations=%d\ncertified=%b\n"
    (List.length st.Shard.certificate.Netrec_check.Check.violations)
    (Netrec_check.Check.ok st.Shard.certificate)

(* The sched smoke run behind scripts/check_sched.sh: schedule the
   pinned two-corridor scenario with greedy + local search on a -jN
   pool, prove the optimum with the MILP oracle, and print only
   deterministic facts (no wall clock), so the script can diff -j1
   against -j4 byte-for-byte and grep the gate facts. *)
let sched_smoke ~jobs =
  let module Sched = Netrec_sched.Sched in
  let inst = E.Fig_sched.smoke_scenario () in
  let cap = Sched.capacity ~crews:E.Fig_sched.smoke_crews () in
  let pool = E.Common.Pool.create ~jobs in
  let el_str = function
    | `Vertex v -> Printf.sprintf "v%d" v
    | `Edge e -> Printf.sprintf "e%d" e
  in
  let round_str r =
    Printf.sprintf "[%s] cost=%.1f satisfied=%.6f"
      (String.concat "," (List.map el_str r.Sched.elements))
      r.Sched.cost r.Sched.satisfied
  in
  let greedy = Sched.greedy ~cap inst (Instance.repair_all inst) in
  let refined, stats =
    Sched.local_search ~pool ~cap inst (Sched.order_of greedy)
  in
  let oracle =
    match Sched.oracle ~cap inst (E.Fig_sched.smoke_elements ()) with
    | Ok r -> r
    | Error _ -> failwith "sched-smoke: oracle refused the smoke scenario"
  in
  Printf.printf "sched-smoke: n=%d ne=%d elements=%d crews=%d\n"
    (G.nv inst.Instance.graph) (G.ne inst.Instance.graph)
    (List.length (E.Fig_sched.smoke_elements ()))
    E.Fig_sched.smoke_crews;
  List.iteri
    (fun i r -> Printf.printf "round %d: %s\n" (i + 1) (round_str r))
    refined.Sched.rounds;
  Printf.printf "greedy_auc=%.6f\nls_auc=%.6f\noracle_auc=%.6f\n"
    greedy.Sched.auc refined.Sched.auc oracle.Sched.plan.Sched.auc;
  Printf.printf "ls_passes=%d ls_moves_applied=%d\n" stats.Sched.passes
    stats.Sched.moves_applied;
  Printf.printf "oracle_proved=%b\nregret=%.6f\ncertified=%b\n"
    oracle.Sched.proved
    (Sched.regret ~oracle:oracle.Sched.plan refined)
    (List.for_all Netrec_check.Check.ok (Sched.certify_rounds inst refined))

(* The opt smoke run behind scripts/check_opt.sh: one full OPT solve of
   the pinned lp_gate scenario with the exact-solver accelerations on
   (presolve + cuts + dual steepest edge), then one solve per
   acceleration individually disabled, printing only deterministic facts
   (no wall clock).  The script asserts the pivot/node ceilings, that
   every variant proves optimality, and that the proved objective is
   bit-identical across variants — the differential safety net for the
   model-side performance layer.  The midsize row is a harder Gaussian
   scenario under a node budget that only the accelerated solver closes:
   base (no presolve, no cuts, Dantzig) must leave it unproved. *)
let opt_smoke () =
  let module Opt = Netrec_heuristics.Opt in
  let counters =
    [ "simplex.pivots"; "milp.nodes"; "cuts.added"; "cuts.root_solves";
      "presolve.runs"; "simplex.dse_pivots"; "mcf.feasible_solves";
      "mcf.feasible_pivots"; "mcf.max_scale_solves"; "mcf.max_scale_pivots" ]
  in
  let deltas f =
    let before = List.map (fun k -> (k, Obs.counter_value k)) counters in
    let r = f () in
    (r, List.map (fun (k, v) -> (k, Obs.counter_value k - v)) before)
  in
  let row name ?presolve ?cuts ?pricing ?node_limit inst =
    let r, ds =
      deltas (fun () -> Opt.solve ?presolve ?cuts ?pricing ?node_limit inst)
    in
    Printf.printf "%s: proved=%b objective=%.6f nodes=%d %s\n" name
      r.Opt.proved r.Opt.objective r.Opt.nodes
      (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ds));
    r
  in
  Printf.printf "opt-smoke: pinned bell-canada gaussian (seed 2, variance 70)\n";
  ignore (row "pinned" (gaussian_instance ()));
  ignore (row "nopresolve" ~presolve:false (gaussian_instance ()));
  ignore (row "nocuts" ~cuts:false (gaussian_instance ()));
  ignore
    (row "dantzig" ~pricing:Netrec_lp.Tuning.Dantzig (gaussian_instance ()));
  let midsize () =
    let g = Netrec_topo.Bell_canada.graph () in
    let rng = Rng.create 5 in
    let demands = E.Common.feasible_demands ~rng ~count:5 ~amount:10.0 g in
    let failure = Netrec_disrupt.Models.gaussian ~rng ~variance:120.0 g in
    Instance.make ~graph:g ~demands ~failure ()
  in
  let base =
    row "midsize-base" ~presolve:false ~cuts:false
      ~pricing:Netrec_lp.Tuning.Dantzig ~node_limit:600 (midsize ())
  in
  let full = row "midsize-full" ~node_limit:600 (midsize ()) in
  Printf.printf "midsize: base_proved=%b full_proved=%b\n"
    base.Netrec_heuristics.Opt.proved full.Netrec_heuristics.Opt.proved

(* [-jN] anywhere on the command line sets the pool size for figure
   regeneration (default 2; results are identical for any N). *)
let parse_jobs args =
  List.fold_left
    (fun (jobs, rest) arg ->
      if String.length arg > 2 && String.sub arg 0 2 = "-j" then
        match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
        | Some n when n >= 1 -> (Some n, rest)
        | _ -> (jobs, arg :: rest)
      else (jobs, arg :: rest))
    (None, []) args
  |> fun (jobs, rest) -> (jobs, List.rev rest)

let () =
  (* Micro-benchmarks run with the collector disabled so the estimates
     reflect production cost; figure regeneration runs with it on so the
     run record captures solver work counters. *)
  let jobs, args =
    match Array.to_list Sys.argv with
    | [] -> (None, [])
    | _ :: rest -> parse_jobs rest
  in
  let with_jobs s = match jobs with Some j -> { s with jobs = j } | None -> s in
  match args with
  | [] ->
    let benchmarks = micro_benchmarks () in
    Obs.set_enabled true;
    run_all (with_jobs default);
    serve_bench ();
    write_bench_metrics ~mode:"default" ~benchmarks
  | [ "quick" ] ->
    let benchmarks = micro_benchmarks () in
    Obs.set_enabled true;
    run_all (with_jobs quick);
    serve_bench ();
    write_bench_metrics ~mode:"quick" ~benchmarks
  | [ "serve" ] ->
    Obs.set_enabled true;
    serve_bench ~clients:16 ~per_client:32 ();
    write_bench_metrics ~mode:"serve" ~benchmarks:[]
  | [ "bench" ] ->
    let benchmarks = micro_benchmarks () in
    write_bench_metrics ~mode:"bench" ~benchmarks
  | [ "xl-smoke" ] ->
    Obs.set_enabled true;
    xl_smoke ~jobs:(Option.value ~default:1 jobs)
  | [ "sched-smoke" ] ->
    Obs.set_enabled true;
    sched_smoke ~jobs:(Option.value ~default:1 jobs)
  | [ "opt-smoke" ] ->
    Obs.set_enabled true;
    opt_smoke ()
  | [ "figures" ] ->
    Obs.set_enabled true;
    run_all (with_jobs default);
    write_bench_metrics ~mode:"figures" ~benchmarks:[]
  | figs ->
    let s = if List.mem "quick" figs then quick else default in
    let figs = List.filter (fun f -> f <> "quick") figs in
    Obs.set_enabled true;
    List.iter (run_figure (with_jobs s)) figs;
    write_bench_metrics ~mode:(String.concat "+" figs) ~benchmarks:[]
