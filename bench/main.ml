(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Figs. 3-7 and 9; Figs. 1, 2, 8 are illustrations and
   Table I is notation) and runs one Bechamel micro-benchmark per
   table/figure family.

   Usage:
     main.exe               benches + all figures (default settings)
     main.exe quick         benches + all figures (1 run/point, small OPT budget)
     main.exe bench         Bechamel micro-benchmarks only
     main.exe fig3 ... fig9 a single figure
     main.exe figures       all figures, no micro-benchmarks *)

module G = Netrec_graph.Graph
module Rng = Netrec_util.Rng
module Table = Netrec_util.Table
module Obs = Netrec_obs.Obs
module Failure = Netrec_disrupt.Failure
module Instance = Netrec_core.Instance
module E = Netrec_experiments

(* ---- Bechamel micro-benchmarks: one Test.make per figure family ---- *)

let bell_canada_instance () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 1 in
  let demands = E.Common.feasible_demands ~rng ~count:4 ~amount:10.0 g in
  Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()

let gaussian_instance () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 2 in
  let demands = E.Common.feasible_demands ~rng ~count:4 ~amount:10.0 g in
  let failure = Netrec_disrupt.Models.gaussian ~rng ~variance:70.0 g in
  Instance.make ~graph:g ~demands ~failure ()

let er_instance () =
  let rng = Rng.create 3 in
  let g =
    Netrec_graph.Generate.erdos_renyi ~rng ~n:100 ~p:0.3 ~capacity:1000.0
  in
  let demands =
    E.Common.feasible_demands ~rng ~distinct:true ~count:5 ~amount:1.0 g
  in
  (g, Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ())

let caida_instance () =
  let g = Netrec_topo.Caida.graph () in
  let rng = Rng.create 4 in
  let demands =
    E.Common.feasible_demands ~rng ~distinct:true ~count:4 ~amount:22.0 g
  in
  Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()

let micro_benchmarks () =
  let open Bechamel in
  let bc = bell_canada_instance () in
  let gauss = gaussian_instance () in
  let er_g, er = er_instance () in
  let caida = caida_instance () in
  let er_pairs =
    List.map
      (fun d -> (d.Netrec_flow.Commodity.src, d.Netrec_flow.Commodity.dst))
      er.Instance.demands
  in
  let tests =
    [ Test.make ~name:"fig3:mcf-relaxation-lp" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Mcf_heuristic.solve bc)));
      Test.make ~name:"fig4:isp-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve bc)));
      Test.make ~name:"fig4:grd-com-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Greedy.grd_com bc)));
      Test.make ~name:"fig5:srt-bell-canada" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Srt.solve bc)));
      Test.make ~name:"fig6:isp-gaussian" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve gauss)));
      Test.make ~name:"fig7:isp-erdos-renyi" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve er)));
      Test.make ~name:"fig7:steiner-forest-dp" (Staged.stage (fun () ->
          ignore
            (Netrec_heuristics.Exact_forest.optimal_total_repairs er_g
               ~pairs:er_pairs)));
      Test.make ~name:"fig9:isp-caida" (Staged.stage (fun () ->
          ignore (Netrec_core.Isp.solve caida)));
      Test.make ~name:"opt:bell-canada-gaussian" (Staged.stage (fun () ->
          ignore (Netrec_heuristics.Opt.solve gauss)));
      Test.make ~name:"mcf-lp:feasible-bell-canada" (Staged.stage (fun () ->
          ignore
            (Netrec_flow.Mcf_lp.feasible
               ~cap:(G.capacity bc.Instance.graph)
               bc.Instance.graph bc.Instance.demands))) ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ clock ] test in
      let analyzed = Analyze.all ols clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (v :: _) -> v
            | Some [] | None -> nan
          in
          let ms = ns /. 1e6 in
          Printf.printf "  %-28s %12.3f ms/run\n%!" name ms;
          collected := (name, ms) :: !collected)
        analyzed)
    tests;
  print_newline ();
  List.rev !collected

(* ---- figure regeneration ---- *)

type settings = { runs : int; opt_nodes : int; jobs : int }

(* Two domains by default: exercises the deterministic pool (and records
   its counters in BENCH_metrics.json) while staying cheap on small
   machines.  Tables and journal bytes are identical for any [jobs]. *)
let default = { runs = 3; opt_nodes = 800; jobs = 2 }
let quick = { runs = 1; opt_nodes = 60; jobs = 2 }

(* Print each table and also drop it as CSV under results/ so the series
   can be re-plotted without re-running anything. *)
let emit_tables fig tables =
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iteri
    (fun i t ->
      Table.print t;
      let path = Printf.sprintf "results/%s_%d.csv" fig (i + 1) in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      output_char oc '\n';
      close_out oc)
    tables

let run_figure s fig =
  let pool = E.Common.Pool.create ~jobs:s.jobs in
  match fig with
  | "fig3" -> emit_tables "fig3" (E.Fig3.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig4" -> emit_tables "fig4" (E.Fig4.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig5" -> emit_tables "fig5" (E.Fig5.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig6" -> emit_tables "fig6" (E.Fig6.run ~pool ~runs:s.runs ~opt_nodes:s.opt_nodes ())
  | "fig7" -> emit_tables "fig7" (E.Fig7.run ~pool ~runs:s.runs ())
  | "fig9" -> emit_tables "fig9" (E.Fig9.run ~pool ~runs:s.runs ())
  | "ablation" -> emit_tables "ablation" (E.Ablation.run ~runs:s.runs ())
  | other -> Printf.eprintf "unknown figure %S\n" other

let all_figures = [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig9"; "ablation" ]

let run_all s =
  List.iter
    (fun fig ->
      let g0 = Obs.gc_snapshot () in
      let (), secs = Obs.timed ("bench." ^ fig) (fun () -> run_figure s fig) in
      let d = Obs.gc_delta g0 (Obs.gc_snapshot ()) in
      Printf.printf
        "(%s regenerated in %.1f s; gc: %.1f Mw minor, %.1f Mw major, %d \
         compaction(s))\n\n\
         %!"
        fig secs
        (d.Obs.minor_words /. 1e6)
        (d.Obs.major_words /. 1e6)
        d.Obs.gc_compactions)
    all_figures;
  (* The solver-progress trajectories (residual demand, incumbents,
     bounds) behind the figures, for plot_results.gp. *)
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Obs.write_events "results/progress.jsonl";
  Printf.printf "wrote results/progress.jsonl\n%!"

(* Deterministic LP work gate: exact counter deltas for one full OPT
   solve of the gaussian Bell Canada scenario.  Unlike the wall-clock
   micro-benchmarks these integers are machine-independent, so CI can
   hold the line on simplex/branch-and-bound work regressions exactly. *)
let lp_gate_metrics () =
  let inst = gaussian_instance () in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let keys =
    [ "simplex.pivots"; "simplex.bound_flips"; "simplex.solves";
      "simplex.warm_starts"; "simplex.phase1_skipped"; "milp.nodes";
      "milp.nodes_pruned" ]
  in
  let before = List.map (fun k -> (k, Obs.counter_value k)) keys in
  let r = Netrec_heuristics.Opt.solve inst in
  let deltas = List.map (fun (k, v) -> (k, Obs.counter_value k - v)) before in
  Obs.set_enabled was;
  ("opt.proved", if r.Netrec_heuristics.Opt.proved then 1 else 0)
  :: ("opt.nodes", r.Netrec_heuristics.Opt.nodes)
  :: deltas

(* Machine-readable run record: micro-benchmark estimates, the
   deterministic LP work gate, plus the full counter/gauge/histogram/
   span/progress snapshot of the figure regeneration. *)
let write_bench_metrics ~mode ~benchmarks =
  let lp_gate = lp_gate_metrics () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"netrec-bench-metrics/2\",";
  Printf.bprintf buf "\"mode\":\"%s\",\"benchmarks\":{" mode;
  List.iteri
    (fun i (name, ms) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%.6f" name ms)
    benchmarks;
  Buffer.add_string buf "},\"lp_gate\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" name v)
    lp_gate;
  Buffer.add_string buf "},\"metrics\":";
  Buffer.add_string buf (Obs.metrics_json ());
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_metrics.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_metrics.json\n%!"

(* [-jN] anywhere on the command line sets the pool size for figure
   regeneration (default 2; results are identical for any N). *)
let parse_jobs args =
  List.fold_left
    (fun (jobs, rest) arg ->
      if String.length arg > 2 && String.sub arg 0 2 = "-j" then
        match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
        | Some n when n >= 1 -> (Some n, rest)
        | _ -> (jobs, arg :: rest)
      else (jobs, arg :: rest))
    (None, []) args
  |> fun (jobs, rest) -> (jobs, List.rev rest)

let () =
  (* Micro-benchmarks run with the collector disabled so the estimates
     reflect production cost; figure regeneration runs with it on so the
     run record captures solver work counters. *)
  let jobs, args =
    match Array.to_list Sys.argv with
    | [] -> (None, [])
    | _ :: rest -> parse_jobs rest
  in
  let with_jobs s = match jobs with Some j -> { s with jobs = j } | None -> s in
  match args with
  | [] ->
    let benchmarks = micro_benchmarks () in
    Obs.set_enabled true;
    run_all (with_jobs default);
    write_bench_metrics ~mode:"default" ~benchmarks
  | [ "quick" ] ->
    let benchmarks = micro_benchmarks () in
    Obs.set_enabled true;
    run_all (with_jobs quick);
    write_bench_metrics ~mode:"quick" ~benchmarks
  | [ "bench" ] ->
    let benchmarks = micro_benchmarks () in
    write_bench_metrics ~mode:"bench" ~benchmarks
  | [ "figures" ] ->
    Obs.set_enabled true;
    run_all (with_jobs default);
    write_bench_metrics ~mode:"figures" ~benchmarks:[]
  | figs ->
    let s = if List.mem "quick" figs then quick else default in
    let figs = List.filter (fun f -> f <> "quick") figs in
    Obs.set_enabled true;
    List.iter (run_figure (with_jobs s)) figs;
    write_bench_metrics ~mode:(String.concat "+" figs) ~benchmarks:[]
