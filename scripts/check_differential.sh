#!/bin/sh
# Cross-solver differential gate: run every solver on seeded random
# instances, certify each solution with netrec_check, and assert the
# paper's cost orderings plus -j determinism.  Every 16th instance also
# re-runs OPT with cold node solves, presolve off and cuts off, and
# requires proved costs to agree with the full pipeline.
#
#   scripts/check_differential.sh          # 200 instances, seed 42
#   scripts/check_differential.sh 500 7    # custom count and seed
#
# Part of the default test alias (deterministic, a few seconds):
#
#   dune build @differential     # or dune runtest
#
# When invoked through the alias, $RECOVER_EXE points at the already-
# built CLI (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

INSTANCES="${1:-200}"
SEED="${2:-42}"

if [ -z "${RECOVER_EXE:-}" ]; then
  dune build bin/recover.exe
  RECOVER_EXE=_build/default/bin/recover.exe
fi

"$RECOVER_EXE" check --instances "$INSTANCES" --seed "$SEED" -j 2
echo "OK: every solver certified on $INSTANCES seeded instances"
