#!/bin/sh
# Crash-and-resume check for the experiment journal.
#
#   scripts/check_resume.sh            # fig4, 2 runs (a couple of minutes)
#   scripts/check_resume.sh fig5 3     # any figure + run count
#
# Runs a sweep with --journal, SIGKILLs it mid-flight, resumes with the
# same journal file, and verifies that the final journal matches a
# never-interrupted reference run cell-for-cell (timing fields stripped —
# wall seconds legitimately differ between runs).
set -eu

cd "$(dirname "$0")/.."

FIG="${1:-fig4}"
RUNS="${2:-2}"

dune build bin/recover.exe
RECOVER=./_build/default/bin/recover.exe

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
KILLED="$WORK/killed.jsonl"
REFERENCE="$WORK/reference.jsonl"

# Strip nondeterministic fields ("seconds" cells) and normalize float
# formatting so two runs of the same seeded sweep compare equal.
normalize() {
  python3 - "$1" <<'EOF'
import json, sys
cells = {}
order = []
with open(sys.argv[1]) as f:
    header = f.readline().rstrip("\n")
    assert header == "netrec-journal/1", f"bad header {header!r}"
    for line in f:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue  # crash-truncated line
        if obj.get("type") != "cell":
            continue
        key = (obj["point"], obj["run"], obj["alg"])
        payload = {
            k: round(float(v), 9)
            for k, v in obj.items()
            if k not in ("type", "point", "run", "alg", "seconds")
        }
        if key not in cells:
            order.append(key)
        cells[key] = payload  # last write wins, like the loader
for key in sorted(order):
    point, run, alg = key
    fields = ",".join(f"{k}={v}" for k, v in sorted(cells[key].items()))
    print(f"{point} run={run} {alg}: {fields}")
EOF
}

echo "== interrupted run ($FIG, $RUNS runs) =="
"$RECOVER" experiment "$FIG" --runs "$RUNS" --journal "$KILLED" \
  >"$WORK/killed.log" 2>&1 &
PID=$!

# Wait for some cells to land, then kill mid-flight.
for _ in $(seq 1 600); do
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: sweep finished before it could be killed; pick a longer figure" >&2
    exit 1
  fi
  if [ -s "$KILLED" ] && [ "$(wc -l <"$KILLED")" -gt 5 ]; then
    break
  fi
  sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
CELLS_BEFORE=$(grep -c '"type":"cell"' "$KILLED" || true)
echo "killed after $CELLS_BEFORE recorded cells"
if [ "$CELLS_BEFORE" -eq 0 ]; then
  echo "FAIL: no cells recorded before the kill" >&2
  exit 1
fi

echo "== resumed run =="
"$RECOVER" experiment "$FIG" --runs "$RUNS" --journal "$KILLED" \
  >"$WORK/resumed.log" 2>&1

echo "== reference (uninterrupted) run =="
"$RECOVER" experiment "$FIG" --runs "$RUNS" --journal "$REFERENCE" \
  >"$WORK/reference.log" 2>&1

normalize "$KILLED" >"$WORK/killed.norm"
normalize "$REFERENCE" >"$WORK/reference.norm"

if ! diff -u "$WORK/reference.norm" "$WORK/killed.norm"; then
  echo "FAIL: resumed journal diverges from the uninterrupted reference" >&2
  exit 1
fi

# The resumed sweep must also print the same tables as the reference.
if ! diff -u "$WORK/reference.log" "$WORK/resumed.log" >/dev/null; then
  echo "note: table output differs (timing columns expected to); journals match"
fi

echo "OK: $(wc -l <"$WORK/reference.norm") cells identical after kill -9 + resume"
