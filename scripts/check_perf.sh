#!/bin/sh
# Performance regression gate: re-run the Bechamel micro-benchmarks and
# compare each estimate against the committed BENCH_metrics.json
# baseline at the repo root.
#
#   scripts/check_perf.sh        # fail on >25% regression
#   scripts/check_perf.sh 10     # custom tolerance (percent)
#
# Wall-clock sensitive by nature, so this is opt-in rather than part of
# the default test alias:
#
#   dune build @perf
#
# When invoked through the alias, $BENCH_EXE points at the already-built
# bench executable (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

TOL="${1:-25}"
BASELINE=BENCH_metrics.json

if [ ! -s "$BASELINE" ]; then
  echo "FAIL: baseline $BASELINE missing or empty" >&2
  exit 1
fi

if [ -z "${BENCH_EXE:-}" ]; then
  dune build bench/main.exe
  BENCH_EXE=_build/default/bench/main.exe
fi
case "$BENCH_EXE" in
  /*) : ;;
  *) BENCH_EXE="$(pwd)/$BENCH_EXE" ;;
esac

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 unavailable, cannot compare benchmark estimates" >&2
  exit 0
fi

# Benchmark in a scratch directory so the baseline is not overwritten.
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM
BASELINE_ABS="$(pwd)/$BASELINE"
(cd "$TMP" && "$BENCH_EXE" bench)

python3 - "$BASELINE_ABS" "$TMP/BENCH_metrics.json" "$TOL" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base_doc = json.load(f)
with open(sys.argv[2]) as f:
    now_doc = json.load(f)
base = base_doc.get("benchmarks", {})
now = now_doc.get("benchmarks", {})
tol = float(sys.argv[3]) / 100.0

if not base:
    sys.exit("FAIL: baseline carries no benchmark estimates")

# A regression must exceed the relative tolerance AND an absolute floor:
# sub-10ms estimates swing by ±30% with machine state alone, and a
# fraction of a millisecond is never a regression worth failing CI over.
ABS_FLOOR_MS = 1.0

regressions = []
for name, ms in sorted(base.items()):
    cur = now.get(name)
    if cur is None:
        regressions.append("%s: missing from current run" % name)
        continue
    delta = (cur - ms) / ms if ms > 0 else 0.0
    regressed = delta > tol and (cur - ms) > ABS_FLOOR_MS
    marker = "REGRESSION" if regressed else "ok"
    print("  %-28s %10.3f ms -> %10.3f ms  (%+6.1f%%)  %s"
          % (name, ms, cur, 100.0 * delta, marker))
    if regressed:
        regressions.append("%s: %.3f ms -> %.3f ms (+%.1f%% > %.0f%%)"
                           % (name, ms, cur, 100.0 * delta, 100.0 * tol))

# LP work gate: the lp_gate counters are deterministic integers (one OPT
# solve of a pinned scenario), so they are compared much more tightly
# than the wall-clock estimates.  simplex.pivots is the headline number
# for the warm-started branch-and-bound: allow 10% slack for legitimate
# pivoting-rule tweaks, and require the search to still prove optimality.
LP_TOL = 0.10
base_gate = base_doc.get("lp_gate", {})
now_gate = now_doc.get("lp_gate", {})
if base_gate:
    if not now_gate:
        regressions.append("lp_gate: missing from current run")
    else:
        if now_gate.get("opt.proved", 0) != 1:
            regressions.append("lp_gate: OPT no longer proves optimality")
        for key in ("simplex.pivots", "milp.nodes"):
            b, c = base_gate.get(key), now_gate.get(key)
            if b is None or c is None:
                continue
            delta = (c - b) / b if b > 0 else 0.0
            marker = "REGRESSION" if delta > LP_TOL else "ok"
            print("  %-28s %10d    -> %10d     (%+6.1f%%)  %s"
                  % ("lp_gate:" + key, b, c, 100.0 * delta, marker))
            if delta > LP_TOL:
                regressions.append("lp_gate %s: %d -> %d (+%.1f%% > %.0f%%)"
                                   % (key, b, c, 100.0 * delta, 100.0 * LP_TOL))

if regressions:
    print("FAIL: performance regressions beyond tolerance:", file=sys.stderr)
    for r in regressions:
        print("  " + r, file=sys.stderr)
    sys.exit(1)
print("OK: no micro-benchmark regressed by more than %.0f%%" % (100.0 * tol))
EOF
