#!/bin/sh
# Performance regression gate: re-run the bench harness and compare the
# resulting run record against the committed BENCH_metrics.json baseline
# with `recover metrics diff` (wall-clock benchmarks, the deterministic
# LP work gate, and — when the bench mode matches the baseline's —
# histogram quantiles with a 10% p50/p90/p99 gate).
#
#   scripts/check_perf.sh            # bench mode, fail on >25% regression
#   scripts/check_perf.sh 10         # custom wall-clock tolerance (percent)
#   scripts/check_perf.sh 25 quick   # quick mode: figures too, so the
#                                    # quantile gate is active against the
#                                    # quick-mode baseline
#
# Wall-clock sensitive by nature, so this is opt-in rather than part of
# the default test alias:
#
#   dune build @perf       # bench mode
#   dune build @metrics    # quick mode (quantile gate active)
#
# When invoked through an alias, $BENCH_EXE and $RECOVER_EXE point at the
# already-built executables (a dune action must not invoke dune
# recursively).
set -eu

cd "$(dirname "$0")/.."

TOL="${1:-25}"
MODE="${2:-bench}"
QUANTILE_TOL=10
BASELINE=BENCH_metrics.json

if [ ! -s "$BASELINE" ]; then
  echo "FAIL: baseline $BASELINE missing or empty" >&2
  exit 1
fi

if [ -z "${BENCH_EXE:-}" ]; then
  dune build bench/main.exe
  BENCH_EXE=_build/default/bench/main.exe
fi
if [ -z "${RECOVER_EXE:-}" ]; then
  dune build bin/recover.exe
  RECOVER_EXE=_build/default/bin/recover.exe
fi
case "$BENCH_EXE" in
  /*) : ;;
  *) BENCH_EXE="$(pwd)/$BENCH_EXE" ;;
esac
case "$RECOVER_EXE" in
  /*) : ;;
  *) RECOVER_EXE="$(pwd)/$RECOVER_EXE" ;;
esac

# Benchmark in a scratch directory so the baseline is not overwritten.
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM
BASELINE_ABS="$(pwd)/$BASELINE"
(cd "$TMP" && "$BENCH_EXE" "$MODE")

"$RECOVER_EXE" metrics diff "$BASELINE_ABS" "$TMP/BENCH_metrics.json" \
  --tolerance "$TOL" --quantile-tolerance "$QUANTILE_TOL"
