#!/bin/sh
# Exact-solver acceleration gate: run the pinned Bell-Canada Gaussian
# scenario (bench/main.exe opt-smoke, the same instance behind the
# BENCH_metrics.json lp_gate block) through the full pipeline and with
# each acceleration individually disabled, and assert that
#
#   - the full pipeline proves optimality within the ratcheted work
#     ceilings (simplex.pivots <= 8310, milp.nodes < 71 — half the
#     pre-acceleration pivot count),
#   - presolve off, cuts off and Dantzig pricing each still prove the
#     SAME objective (printed with a fixed six-decimal format, so the
#     comparison is pure text),
#   - the mid-size Gaussian scenario flips: the un-accelerated pipeline
#     exhausts its node budget unproved, the full pipeline proves.
#
# Fully deterministic (pinned scenarios, no wall-clock in the output),
# so it runs as part of @runtest via the @opt alias:
#
#   dune build @opt
#
# When invoked through the alias, $BENCH_EXE points at the already-built
# executable (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

PIVOT_CEILING=8310
NODE_CEILING=71

if [ -z "${BENCH_EXE:-}" ]; then
  dune build bench/main.exe
  BENCH_EXE=_build/default/bench/main.exe
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

"$BENCH_EXE" opt-smoke > "$TMP/out.txt"

fail() {
  echo "FAIL: opt-smoke: $1" >&2
  cat "$TMP/out.txt" >&2
  exit 1
}

row() {
  sed -n "s/^$1: //p" "$TMP/out.txt"
}

field() {
  # field "<row text>" <key>  ->  value of key=value
  printf '%s\n' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

pinned=$(row pinned)
[ -n "$pinned" ] || fail "no pinned row"

for name in pinned nopresolve nocuts dantzig; do
  r=$(row "$name")
  [ -n "$r" ] || fail "no $name row"
  [ "$(field "$r" proved)" = "true" ] || fail "$name did not prove optimality"
done

objective=$(field "$pinned" objective)
for name in nopresolve nocuts dantzig; do
  o=$(field "$(row "$name")" objective)
  if [ "$o" != "$objective" ]; then
    fail "$name objective $o differs from pinned $objective"
  fi
done

pivots=$(field "$pinned" simplex.pivots)
nodes=$(field "$pinned" milp.nodes)
[ -n "$pivots" ] && [ -n "$nodes" ] || fail "pinned row lacks work counters"
if [ "$pivots" -gt "$PIVOT_CEILING" ]; then
  fail "pinned simplex.pivots $pivots exceeds the $PIVOT_CEILING ceiling"
fi
if [ "$nodes" -ge "$NODE_CEILING" ]; then
  fail "pinned milp.nodes $nodes reaches the $NODE_CEILING ceiling"
fi

# The accelerations must be live on the pinned solve, not merely harmless.
[ "$(field "$pinned" presolve.runs)" -gt 0 ] || fail "presolve never ran"
[ "$(field "$pinned" cuts.added)" -gt 0 ] || fail "no cuts were added"
[ "$(field "$pinned" simplex.dse_pivots)" -gt 0 ] || fail "DSE never priced"

grep -q '^midsize: base_proved=false full_proved=true$' "$TMP/out.txt" \
  || fail "mid-size scenario did not flip from budget-exhausted to proved"

echo "OK: opt smoke proved at $pivots pivots / $nodes nodes," \
  "objective $objective stable with each acceleration disabled," \
  "mid-size scenario flips to proved"
