#!/bin/sh
# sched gate: run the pinned 5-vertex two-corridor smoke scenario
# (bench/main.exe sched-smoke, the same instance behind the
# BENCH_metrics.json sched_gate block) through every scheduler and
# assert that
#
#   - the MILP oracle proves optimality (not just an incumbent),
#   - greedy + local search land within 5% AUC of the proved optimum,
#   - every round prefix certifies with zero violations,
#   - the output is byte-identical for -j1 and -j4 pools.
#
# Fully deterministic (pinned scenario, no wall-clock in the output),
# so it runs as part of @runtest via the @sched alias:
#
#   dune build @sched
#
# When invoked through the alias, $BENCH_EXE points at the already-built
# executable (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

if [ -z "${BENCH_EXE:-}" ]; then
  dune build bench/main.exe
  BENCH_EXE=_build/default/bench/main.exe
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

"$BENCH_EXE" sched-smoke -j1 > "$TMP/j1.txt"
"$BENCH_EXE" sched-smoke -j4 > "$TMP/j4.txt"

if ! diff "$TMP/j1.txt" "$TMP/j4.txt" > "$TMP/diff.txt" 2>&1; then
  echo "FAIL: sched-smoke output differs between -j1 and -j4:" >&2
  cat "$TMP/diff.txt" >&2
  exit 1
fi

require() {
  if ! grep -q "$1" "$TMP/j1.txt"; then
    echo "FAIL: sched-smoke: expected $1 in:" >&2
    cat "$TMP/j1.txt" >&2
    exit 1
  fi
}

require 'oracle_proved=true'
require 'certified=true'

# Regret of the production pipeline (greedy + local search) against the
# proved optimum must stay within the 5% gate.  The value is printed
# with a fixed six-decimal format, so the comparison is pure text.
regret=$(sed -n 's/^regret=\([0-9.]*\)$/\1/p' "$TMP/j1.txt")
if [ -z "$regret" ]; then
  echo "FAIL: sched-smoke: no regret= line in:" >&2
  cat "$TMP/j1.txt" >&2
  exit 1
fi
if ! awk "BEGIN { exit !($regret <= 0.05) }"; then
  echo "FAIL: sched-smoke: regret $regret exceeds the 5% gate" >&2
  cat "$TMP/j1.txt" >&2
  exit 1
fi

echo "OK: sched smoke oracle proved, regret $regret <= 0.05, certified, -j deterministic"
