#!/bin/sh
# Run the bench harness and validate the BENCH_metrics.json it emits.
#
#   scripts/check_metrics.sh            # full quick mode (micro + all figures)
#   scripts/check_metrics.sh fig4 quick # any bench/main.exe arguments
#
# Checks that the file exists, parses as JSON, and contains the solver
# work counters, quantile histograms and progress trajectory the run
# report is expected to carry.
set -eu

cd "$(dirname "$0")/.."

dune build bench/main.exe

if [ "$#" -eq 0 ]; then
  set -- quick
fi
./_build/default/bench/main.exe "$@"

METRICS=BENCH_metrics.json
if [ ! -s "$METRICS" ]; then
  echo "FAIL: $METRICS missing or empty" >&2
  exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$METRICS" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("schema") != "netrec-bench-metrics/2":
    sys.exit("FAIL: unexpected schema %r" % doc.get("schema"))
counters = doc.get("metrics", {}).get("counters", {})
missing = [k for k in ("isp.iterations", "simplex.pivots", "dijkstra.calls",
                       "centrality.cache_hits", "parallel.cells",
                       "simplex.warm_starts", "simplex.phase1_skipped",
                       "milp.nodes", "milp.nodes_pruned")
           if counters.get(k, 0) <= 0]
# cache_misses must be present (every fresh demand is a miss first);
# cache_hits > 0 above proves the incremental path actually reused work.
if "centrality.cache_misses" not in counters:
    missing.append("centrality.cache_misses")
# Sharded-solver counters: the xl gate runs a pinned multi-shard
# scenario in every bench mode, so the shape counters must be live;
# fixup/delegated/skipped are materialised at 0 and may stay there.
missing += [k for k in ("isp.shard_count", "isp.shard_region_vertices",
                        "isp.shard_cut_demands",
                        "centrality.sampled_recomputed")
            if counters.get(k, 0) <= 0]
missing += [k for k in ("isp.shard_fixup_paths", "isp.shard_delegated",
                        "centrality.sampled_skipped")
            if k not in counters]
# Scheduler counters: the sched gate runs the pinned smoke scenario in
# every bench mode, so plan/round/eval counters must be live;
# moves_applied may legitimately stay 0 (greedy can already be optimal).
missing += [k for k in ("sched.plans", "sched.rounds", "sched.evals",
                        "sched.ls_passes", "sched.moves_tried",
                        "sched.oracle_solves", "sched.oracle_nodes")
            if counters.get(k, 0) <= 0]
if "sched.moves_applied" not in counters:
    missing.append("sched.moves_applied")
if missing:
    sys.exit("FAIL: missing or zero counters: %s" % ", ".join(missing))
gate = doc.get("xl_gate", {})
if gate.get("xl.certified") != 1:
    sys.exit("FAIL: xl_gate missing or stitched solution not certified: %r"
             % gate)
if gate.get("check.violations") != 0:
    sys.exit("FAIL: xl_gate check.violations nonzero: %r" % gate)
if gate.get("isp.shard_count", 0) < 2:
    sys.exit("FAIL: xl_gate expected >= 2 shards: %r" % gate)
gate = doc.get("sched_gate", {})
if gate.get("sched.oracle_proved") != 1:
    sys.exit("FAIL: sched_gate missing or oracle did not prove optimality: %r"
             % gate)
if gate.get("sched.certified") != 1:
    sys.exit("FAIL: sched_gate round prefixes not certified: %r" % gate)
# 5% regret gate, in the same microunits the block stores AUCs in.
if gate.get("sched.regret_microunits", 10**9) > 50000:
    sys.exit("FAIL: sched_gate regret exceeds 5%%: %r" % gate)
bad = [k for k in ("sched.plans", "sched.rounds", "sched.evals",
                   "sched.oracle_solves", "sched.oracle_nodes",
                   "sched.plan_rounds")
       if gate.get(k, 0) <= 0]
if bad:
    sys.exit("FAIL: sched_gate counters missing or zero: %s" % ", ".join(bad))
gauges = doc.get("metrics", {}).get("gauges", {})
cpd = gauges.get("parallel.cells_per_domain", {})
if cpd.get("samples", 0) <= 0 or cpd.get("max", 0) <= 0:
    sys.exit("FAIL: parallel.cells_per_domain gauge missing or empty")
# Obs v2: every required histogram must be present with its full
# quantile set; the per-run trajectory block must be non-empty.
hists = doc.get("metrics", {}).get("histograms", {})
for name in ("isp.iteration_ms", "isp.solve_ms", "shard.solve_ms",
             "simplex.pivots_per_solve", "milp.nodes_per_solve",
             "dijkstra.settled_per_call", "parallel.batch_cells",
             "sched.round_satisfaction"):
    h = hists.get(name)
    if h is None:
        sys.exit("FAIL: histogram %s missing" % name)
    if h.get("count", 0) <= 0:
        sys.exit("FAIL: histogram %s is empty" % name)
    for q in ("p50", "p90", "p99", "min", "max"):
        if q not in h:
            sys.exit("FAIL: histogram %s lacks quantile key %s" % (name, q))
# Daemon load-generator block: bench modes that run `serve_bench`
# (default/quick/serve) must export the serve.* counters, the client
# latency histogram, and the flushed latency-quantile gauges.
if doc.get("mode") in ("default", "quick", "serve"):
    bad = [k for k in ("serve.requests", "serve.queries", "serve.ok",
                       "serve.cache_hits", "serve.cache_misses",
                       "serve.connections")
           if counters.get(k, 0) <= 0]
    if bad:
        sys.exit("FAIL: serve counters missing or zero: %s" % ", ".join(bad))
    h = hists.get("serve.client_latency_ms")
    if h is None or h.get("count", 0) <= 0:
        sys.exit("FAIL: serve.client_latency_ms histogram missing or empty")
    for q in ("p50", "p90", "p99", "min", "max"):
        if q not in h:
            sys.exit("FAIL: serve.client_latency_ms lacks quantile key %s" % q)
    for g in ("serve.latency_p50_ms", "serve.latency_p99_ms"):
        if gauges.get(g, {}).get("samples", 0) <= 0:
            sys.exit("FAIL: serve gauge %s missing or empty" % g)
progress = doc.get("metrics", {}).get("progress", [])
if not progress:
    sys.exit("FAIL: progress block missing or empty")
names = set(e.get("name") for e in progress)
if "isp.residual" not in names:
    sys.exit("FAIL: progress block carries no isp.residual trajectory")
for e in progress[:50]:
    for k in ("name", "seq", "t_s", "dom", "fields"):
        if k not in e:
            sys.exit("FAIL: progress event lacks key %s: %r" % (k, e))
# Spans must be exported path-sorted so diffs can align them.
paths = [s.get("path", "") for s in doc.get("metrics", {}).get("spans", [])]
if paths != sorted(paths):
    sys.exit("FAIL: spans are not sorted by path")
gate = doc.get("lp_gate", {})
if gate.get("opt.proved") != 1:
    sys.exit("FAIL: lp_gate missing or OPT did not prove optimality: %r" % gate)
bad = [k for k in ("simplex.pivots", "simplex.solves", "simplex.warm_starts",
                   "milp.nodes") if gate.get(k, 0) <= 0]
if bad:
    sys.exit("FAIL: lp_gate counters missing or zero: %s" % ", ".join(bad))
# Exact-solver accelerations (DESIGN.md 18): the pinned solve must
# actually exercise presolve, the cut separator and DSE pricing, not
# merely tolerate them; the remaining acceleration counters only need
# to be materialised (tightening/aging legitimately hit 0 on some
# models).
bad = [k for k in ("simplex.dse_pivots", "presolve.runs",
                   "presolve.vars_fixed", "cuts.separated", "cuts.added",
                   "cuts.root_solves")
       if gate.get(k, 0) <= 0]
if bad:
    sys.exit("FAIL: lp_gate acceleration counters missing or zero: %s"
             % ", ".join(bad))
bad = [k for k in ("presolve.rows_dropped", "presolve.bounds_tightened",
                   "presolve.coefs_tightened", "simplex.dse_resets",
                   "cuts.rejected", "cuts.aged_out")
       if k not in gate]
if bad:
    sys.exit("FAIL: lp_gate acceleration counters not materialised: %s"
             % ", ".join(bad))
counters_bad = [k for k in ("presolve.runs", "presolve.vars_fixed",
                            "presolve.rows_dropped",
                            "presolve.bounds_tightened", "cuts.separated",
                            "cuts.added", "cuts.root_solves",
                            "simplex.dse_pivots")
                if counters.get(k, 0) <= 0]
if counters_bad:
    sys.exit("FAIL: acceleration counters missing or zero in the run-wide "
             "snapshot: %s" % ", ".join(counters_bad))
print("OK: %s valid (%d counters, %d histograms, %d progress events, "
      "%d benchmarks)"
      % (sys.argv[1], len(counters), len(hists), len(progress),
         len(doc.get("benchmarks", {}))))
EOF
else
  # No python3: fall back to grepping for the required keys.
  for key in '"schema":"netrec-bench-metrics/2"' '"isp.iterations"' \
             '"simplex.pivots"' '"dijkstra.calls"' \
             '"centrality.cache_hits"' '"centrality.cache_misses"' \
             '"centrality.sampled_recomputed"' '"centrality.sampled_skipped"' \
             '"isp.shard_count"' '"isp.shard_region_vertices"' \
             '"isp.shard_cut_demands"' '"isp.shard_fixup_paths"' \
             '"parallel.cells"' '"parallel.cells_per_domain"' \
             '"lp_gate"' '"simplex.warm_starts"' '"simplex.phase1_skipped"' \
             '"milp.nodes"' '"opt.proved":1' '"presolve.runs"' \
             '"cuts.added"' '"simplex.dse_pivots"' \
             '"xl_gate"' '"xl.certified":1' '"shard.solve_ms"' \
             '"sched_gate"' '"sched.oracle_proved":1' '"sched.certified":1' \
             '"sched.plans"' '"sched.round_satisfaction"' \
             '"histograms"' '"isp.iteration_ms"' '"simplex.pivots_per_solve"' \
             '"dijkstra.settled_per_call"' '"p50"' '"p90"' '"p99"' \
             '"progress"' '"isp.residual"'; do
    if ! grep -q "$key" "$METRICS"; then
      echo "FAIL: $key not found in $METRICS" >&2
      exit 1
    fi
  done
  # Serve block, only for bench modes that run the daemon load test.
  if grep -q '"mode":"\(default\|quick\|serve\)"' "$METRICS"; then
    for key in '"serve.requests"' '"serve.queries"' '"serve.ok"' \
               '"serve.cache_hits"' '"serve.client_latency_ms"' \
               '"serve.latency_p50_ms"'; do
      if ! grep -q "$key" "$METRICS"; then
        echo "FAIL: $key not found in $METRICS" >&2
        exit 1
      fi
    done
  fi
  echo "OK: $METRICS contains the required keys (python3 unavailable)"
fi
