#!/bin/sh
# xl scale gate: solve the pinned 5000-vertex scale-free Gaussian smoke
# scenario (bench/main.exe xl-smoke, the same instance behind the
# BENCH_metrics.json xl_gate block) on the disaster-region sharded
# solver and assert that
#
#   - the run takes the sharded path (several shards, not delegation),
#   - the stitched solution is certified with zero violations,
#   - the output is byte-identical for -j1 and -j4 pools.
#
# Fully deterministic (pinned seeds, no wall-clock in the output), so it
# runs as part of @runtest via the @xl alias:
#
#   dune build @xl
#
# When invoked through the alias, $BENCH_EXE points at the already-built
# executable (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

if [ -z "${BENCH_EXE:-}" ]; then
  dune build bench/main.exe
  BENCH_EXE=_build/default/bench/main.exe
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

"$BENCH_EXE" xl-smoke -j1 > "$TMP/j1.txt"
"$BENCH_EXE" xl-smoke -j4 > "$TMP/j4.txt"

if ! diff "$TMP/j1.txt" "$TMP/j4.txt" > "$TMP/diff.txt" 2>&1; then
  echo "FAIL: xl-smoke output differs between -j1 and -j4:" >&2
  cat "$TMP/diff.txt" >&2
  exit 1
fi

require() {
  if ! grep -q "$1" "$TMP/j1.txt"; then
    echo "FAIL: xl-smoke: expected $1 in:" >&2
    cat "$TMP/j1.txt" >&2
    exit 1
  fi
}

require 'delegated=false'
require 'violations=0'
require 'certified=true'

# The pinned scenario splits into several shards; a drop to one (or
# zero) means the partitioning silently stopped doing its job.
shards=$(sed -n 's/.* shards=\([0-9]*\) .*/\1/p' "$TMP/j1.txt")
if [ "${shards:-0}" -lt 2 ]; then
  echo "FAIL: xl-smoke: expected >= 2 shards, got '${shards:-}'" >&2
  cat "$TMP/j1.txt" >&2
  exit 1
fi

echo "OK: xl smoke sharded run certified and -j deterministic ($shards shards)"
