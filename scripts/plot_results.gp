# Gnuplot script for the CSV series emitted by `dune exec bench/main.exe`
# (written into results/).  Produces one PNG per reproduced figure:
#
#   gnuplot scripts/plot_results.gp
#
set datafile separator ','
set key outside
set term pngcairo size 900,600

set output 'results/fig3.png'
set title 'Fig 3: multicommodity solution spread (Bell-Canada, 4 pairs)'
set xlabel 'demand flow per pair'; set ylabel 'total repairs'
plot 'results/fig3_1.csv' skip 1 using 1:2 with linespoints title 'OPT', \
     '' skip 1 using 1:3 with linespoints title 'MCW', \
     '' skip 1 using 1:4 with linespoints title 'MCB', \
     '' skip 1 using 1:5 with lines title 'ALL'

set output 'results/fig4_total.png'
set title 'Fig 4(c): total repairs vs number of demand pairs (Bell-Canada)'
set xlabel 'number of demand pairs'; set ylabel 'total repairs'
plot 'results/fig4_3.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'OPT', \
     '' skip 1 using 1:4 with linespoints title 'SRT', \
     '' skip 1 using 1:5 with linespoints title 'GRD-COM', \
     '' skip 1 using 1:6 with linespoints title 'GRD-NC', \
     '' skip 1 using 1:7 with lines title 'ALL'

set output 'results/fig4_satisfied.png'
set title 'Fig 4(d): % satisfied demand vs number of demand pairs'
set xlabel 'number of demand pairs'; set ylabel '% satisfied'
set yrange [50:105]
plot 'results/fig4_4.csv' skip 1 using 1:2 with linespoints title 'SRT', \
     '' skip 1 using 1:3 with linespoints title 'GRD-COM', \
     '' skip 1 using 1:4 with linespoints title 'ISP'
unset yrange

set output 'results/fig5_total.png'
set title 'Fig 5(a): total repairs vs demand per pair (Bell-Canada, 4 pairs)'
set xlabel 'demand flow per pair'; set ylabel 'total repairs'
plot 'results/fig5_1.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'OPT', \
     '' skip 1 using 1:4 with linespoints title 'SRT', \
     '' skip 1 using 1:5 with linespoints title 'GRD-COM', \
     '' skip 1 using 1:6 with linespoints title 'GRD-NC', \
     '' skip 1 using 1:7 with lines title 'ALL'

set output 'results/fig6_total.png'
set title 'Fig 6(a): total repairs vs variance of the Gaussian disruption'
set xlabel 'variance'; set ylabel 'total repairs'
plot 'results/fig6_1.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'OPT', \
     '' skip 1 using 1:4 with linespoints title 'SRT', \
     '' skip 1 using 1:5 with linespoints title 'GRD-COM', \
     '' skip 1 using 1:6 with linespoints title 'GRD-NC', \
     '' skip 1 using 1:7 with lines title 'ALL'

set output 'results/fig7_repairs.png'
set title 'Fig 7(b): total repairs vs edge probability (G(100,p), 5 unit pairs)'
set xlabel 'edge probability p'; set ylabel 'total repairs'
plot 'results/fig7_2.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'OPT (exact DP)', \
     '' skip 1 using 1:4 with linespoints title 'SRT'

set output 'results/fig9_repairs.png'
set title 'Fig 9(a): total repairs vs number of demand pairs (CAIDA-like)'
set xlabel 'number of demand pairs'; set ylabel 'total repairs'
plot 'results/fig9_1.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'OPT (proxy)', \
     '' skip 1 using 1:4 with linespoints title 'SRT'

set output 'results/fig9_satisfied.png'
set title 'Fig 9(b): % satisfied demand vs number of demand pairs (CAIDA-like)'
set xlabel 'number of demand pairs'; set ylabel '% satisfied'
set yrange [50:105]
plot 'results/fig9_2.csv' skip 1 using 1:2 with linespoints title 'ISP', \
     '' skip 1 using 1:3 with linespoints title 'SRT'
unset yrange

# Fig sched: capacity-constrained temporal recovery scheduling.
# (a) the per-round recovery curves of the four schedulers on the pinned
# smoke scenario (fig_sched_2.csv, satisfied fraction per round);
# (b) the regret of each heuristic against the proved MILP optimum per
# instance size (fig_sched_1.csv, AUC columns arb/greedy/ls/opt).
set output 'results/fig_sched_curve.png'
set title 'Fig sched(a): recovery curve per scheduler (pinned smoke, 3 crews)'
set xlabel 'recovery round'; set ylabel 'satisfied demand fraction'
set yrange [-0.05:1.05]
plot 'results/fig_sched_2.csv' skip 1 using 1:($2/100) with linespoints title 'arbitrary order', \
     '' skip 1 using 1:($3/100) with linespoints title 'greedy', \
     '' skip 1 using 1:($4/100) with linespoints title 'greedy + local search', \
     '' skip 1 using 1:($5/100) with linespoints title 'MILP oracle'
unset yrange

set output 'results/fig_sched_regret.png'
set title 'Fig sched(b): schedule AUC vs the MILP oracle by instance size'
set xlabel 'spine length n'; set ylabel 'area under the recovery curve'
plot 'results/fig_sched_1.csv' skip 1 using 1:4 with linespoints title 'arbitrary order', \
     '' skip 1 using 1:5 with linespoints title 'greedy', \
     '' skip 1 using 1:6 with linespoints title 'greedy + local search', \
     '' skip 1 using 1:7 with linespoints title 'MILP oracle (proved)'

# Fig OPT: the exact-solver acceleration study (fig_opt_1.csv: proved
# rate and node counts; fig_opt_2.csv: anytime bound gap), base pipeline
# (presolve/cuts off, Dantzig) vs full (presolve + cuts + DSE) under the
# same node budget.
set output 'results/fig_opt_proved.png'
set title 'Fig OPT(a): proved-optimality rate vs variance (600-node budget)'
set xlabel 'variance of the Gaussian disruption'; set ylabel 'proved rate (%)'
set yrange [-5:105]
plot 'results/fig_opt_1.csv' skip 1 using 1:2 with linespoints title 'base (no accelerations)', \
     '' skip 1 using 1:3 with linespoints title 'full (presolve + cuts + DSE)'
unset yrange

set output 'results/fig_opt_gap.png'
set title 'Fig OPT(b): anytime bound gap vs variance (600-node budget)'
set xlabel 'variance of the Gaussian disruption'; set ylabel 'objective - bound (cost units)'
plot 'results/fig_opt_2.csv' skip 1 using 1:2 with linespoints title 'base (no accelerations)', \
     '' skip 1 using 1:3 with linespoints title 'full (presolve + cuts + DSE)'

# Recovery curve: residual demand by ISP iteration, extracted from the
# solver-progress event stream (results/progress.jsonl, written by the
# bench harness; `recover ... --events FILE` produces the same format).
# Events inline their fields at the top level, so a sed one-liner turns
# the JSONL into two whitespace-separated columns — no JSON parser
# needed.  The bench interleaves many ISP solves, so the curve restarts
# whenever the iteration counter does; plotted with dots it reads as the
# family of per-solve recovery trajectories.
set output 'results/recovery_curve.png'
set title 'Recovery curves: residual demand vs ISP iteration'
set xlabel 'ISP iteration'; set ylabel 'residual demand (flow units)'
set datafile separator whitespace
plot '< sed -n ''s/.*"name":"isp.residual".*"iteration":\([0-9eE+.-]*\),"residual_demand":\([0-9eE+.-]*\).*/\1 \2/p'' results/progress.jsonl' \
     using 1:2 with dots lc rgb '#1f77b4' title 'per-solve trajectories'
set datafile separator ','
