#!/bin/sh
# Chaos smoke test for the recovery daemon: start `recover serve` with
# fault injection, throw >= 64 concurrent clients at it (killing one of
# them with SIGKILL mid-flight), and assert that
#
#   - the daemon survives every fault and answers every well-formed
#     request with a plan or a structured error (exit 0 or 4 — never a
#     transport failure),
#   - the circuit breaker demonstrably trips AND recovers
#     (serve.breaker_open_transitions >= 1 and
#     serve.breaker_closed_transitions >= 1),
#   - the canonical plan cache serves repeats (serve.cache_hits >= 1),
#   - repeated queries are byte-identical once volatile lines
#     (seconds/cached/shed) are stripped,
#   - SIGTERM drains gracefully: exit 0 and the socket path unlinked.
#
# Deterministic apart from scheduling (injection is seeded), a few
# seconds long; part of @runtest as the @serve alias:
#
#   dune build @serve
#
# When invoked through the alias, $RECOVER_EXE points at the already-
# built CLI (a dune action must not invoke dune recursively).
set -eu

cd "$(dirname "$0")/.."

if [ -z "${RECOVER_EXE:-}" ]; then
  dune build bin/recover.exe
  RECOVER_EXE=_build/default/bin/recover.exe
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/netrec-serve-XXXXXX")
SOCK="$WORK/serve.sock"
DAEMON_LOG="$WORK/daemon.log"
DAEMON=

fail() {
  echo "FAIL: $*" >&2
  [ -s "$DAEMON_LOG" ] && sed 's/^/  daemon: /' "$DAEMON_LOG" >&2
  exit 1
}

cleanup() {
  if [ -n "$DAEMON" ] && kill -0 "$DAEMON" 2>/dev/null; then
    kill -9 "$DAEMON" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# Injection: the first 6 solver calls fail deterministically (tripping
# the 4-sample breaker), then the tier is healthy again so half-open
# probes succeed and the breaker closes; 30% of calls are slowed 5 ms
# to keep the queue honest under 64 concurrent clients.
"$RECOVER_EXE" serve -t abilene --socket "$SOCK" -j 2 --queue-cap 128 \
  --inject "fail_first=6,slow_ms=5,slow_rate=0.3,seed=7" \
  --breaker-window 8 --breaker-min-samples 4 --breaker-failure-rate 0.5 \
  --breaker-cooldown 0.2 >"$DAEMON_LOG" 2>&1 &
DAEMON=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "daemon did not bind $SOCK"
  kill -0 "$DAEMON" 2>/dev/null || fail "daemon exited before binding"
  sleep 0.05
done

query() { "$RECOVER_EXE" query --socket "$SOCK" --deadline 10 "$@"; }

query --ping >/dev/null || fail "ping failed"

# The fixed query repeated by every wave — its repeats must eventually
# come from the plan cache, and its raw rendering must be stable.
fixed_query() {
  query --raw -g isp --demand 0:10:2 --demand 3:7:1 \
    --broken-vertices 1,2 --broken-edges 4,5 "$@"
}

# ---- concurrent client storm: 4 waves x 17 clients = 68 requests ----
# Waves are spaced past the 0.2 s breaker cooldown so half-open probes
# actually happen between bursts; the first wave eats the injected
# failures and trips the breaker, later waves see a healthy tier.
CLIENTS=0
wave=0
while [ "$wave" -lt 4 ]; do
  n=0
  while [ "$n" -lt 16 ]; do
    c=$((wave * 16 + n))
    e1=$((c % 14)) e2=$(((c * 5 + 3) % 14)) v=$((c % 11))
    (
      set +e
      query --raw -g isp --demand "$((c % 11)):$(((c + 5) % 11)):1" \
        --broken-vertices "$v" --broken-edges "$e1,$e2" \
        >"$WORK/client.$c.out" 2>&1
      echo $? >"$WORK/client.$c.code"
    ) &
    eval "PID_$c=$!"
    n=$((n + 1))
    CLIENTS=$((CLIENTS + 1))
  done
  fixed_query >"$WORK/fixed.$wave.out" 2>&1 &
  eval "PID_FIXED_$wave=$!"
  CLIENTS=$((CLIENTS + 1))
  if [ "$wave" -eq 0 ]; then
    # Chaos: SIGKILL one in-flight client.  The daemon must treat the
    # vanished connection as a disconnect, not a crash.
    kill -9 "$PID_0" 2>/dev/null || true
  fi
  wave=$((wave + 1))
  sleep 0.3
done

c=1
while [ "$c" -lt 64 ]; do
  eval "wait \$PID_$c" || true
  c=$((c + 1))
done
wave=0
while [ "$wave" -lt 4 ]; do
  eval "wait \$PID_FIXED_$wave" || true
  wave=$((wave + 1))
done
echo "launched $CLIENTS concurrent clients (one SIGKILLed mid-flight)"

kill -0 "$DAEMON" 2>/dev/null || fail "daemon died during the client storm"

# Every surviving client got a framed answer: a plan (exit 0) or a
# structured error (exit 4).  Anything else is a transport failure.
c=1
while [ "$c" -lt 64 ]; do
  code=$(cat "$WORK/client.$c.code" 2>/dev/null || echo missing)
  case "$code" in
  0 | 4) ;;
  *) fail "client $c: exit '$code' (want 0 or 4): $(cat "$WORK/client.$c.out" 2>/dev/null)" ;;
  esac
  head -1 "$WORK/client.$c.out" | grep -q '^netrec-serve/1 \(ok$\|error \)' ||
    fail "client $c: unframed output: $(head -1 "$WORK/client.$c.out")"
  c=$((c + 1))
done
echo "every client answered with a plan or a structured error"

# ---- breaker must have recovered; give probes a beat if needed ----
stats() { query --stats; }
stat_of() { stats | awk -v k="$1" '$1 == k { print $2 }'; }

i=0
while [ "$(stat_of serve.breaker_closed_transitions)" -lt 1 ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && fail "breaker never closed again: $(stats | tr '\n' ' ')"
  sleep 0.2
  fixed_query >/dev/null 2>&1 || true
done

OPENS=$(stat_of serve.breaker_open_transitions)
CLOSES=$(stat_of serve.breaker_closed_transitions)
[ "$OPENS" -ge 1 ] || fail "breaker never tripped (open_transitions=$OPENS)"
[ "$CLOSES" -ge 1 ] || fail "breaker never recovered (closed_transitions=$CLOSES)"
echo "breaker tripped and recovered (open=$OPENS closed=$CLOSES)"

# ---- cache: repeats byte-identical and served from the cache ----
fixed_query >"$WORK/repeat.1.out" 2>&1 || true
fixed_query --no-cache >"$WORK/repeat.nocache.out" 2>&1 || true
fixed_query >"$WORK/repeat.2.out" 2>&1 || true

strip_volatile() { grep -v '^\(seconds\|cached\|shed\) ' "$1"; }
strip_volatile "$WORK/repeat.1.out" >"$WORK/repeat.1.stable"
strip_volatile "$WORK/repeat.2.out" >"$WORK/repeat.2.stable"
strip_volatile "$WORK/repeat.nocache.out" >"$WORK/repeat.nocache.stable"
cmp -s "$WORK/repeat.1.stable" "$WORK/repeat.2.stable" ||
  fail "repeated query not byte-identical (modulo seconds/cached/shed)"
cmp -s "$WORK/repeat.1.stable" "$WORK/repeat.nocache.stable" ||
  fail "--no-cache answer differs from the cached one"
grep -q '^cached true$' "$WORK/repeat.2.out" ||
  fail "repeat was not served from the cache"
HITS=$(stat_of serve.cache_hits)
[ "$HITS" -ge 1 ] || fail "no cache hits recorded (cache_hits=$HITS)"
echo "cache serves repeats byte-identically (cache_hits=$HITS)"

# ---- graceful shutdown: SIGTERM -> drain, exit 0, socket unlinked ----
kill -TERM "$DAEMON"
STATUS=0
wait "$DAEMON" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS on SIGTERM"
[ ! -e "$SOCK" ] || fail "socket path not unlinked on shutdown"
DAEMON=
grep -q "drained" "$DAEMON_LOG" || fail "daemon log lacks drain confirmation"
echo "SIGTERM drained cleanly (exit 0, socket unlinked)"

echo "OK: daemon survived $CLIENTS chaotic clients; breaker tripped and recovered"
