open Netrec_graph
open Netrec_flow
module Rng = Netrec_util.Rng

(* 4-cycle fixture: 0-1-2-3-0, unit capacities by default. *)
let cycle ?(capacity = 1.0) () =
  Graph.make ~n:4
    ~edges:[ (0, 1, capacity); (1, 2, capacity); (2, 3, capacity); (3, 0, capacity) ]
    ()

(* The bottleneck fixture from the graph tests. *)
let fixture () =
  Graph.make ~n:6
    ~edges:
      [ (0, 1, 10.0); (1, 2, 10.0); (0, 3, 10.0); (3, 4, 10.0); (4, 5, 10.0);
        (2, 5, 10.0); (1, 4, 3.0) ]
    ()

let cap_of g = Graph.capacity g

(* ---- Commodity ---- *)

let test_commodity_make_rejects () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Commodity.make: src = dst")
    (fun () -> ignore (Commodity.make ~src:1 ~dst:1 ~amount:1.0));
  Alcotest.check_raises "negative"
    (Invalid_argument "Commodity.make: negative amount") (fun () ->
      ignore (Commodity.make ~src:0 ~dst:1 ~amount:(-1.0)))

let test_commodity_total () =
  let ds =
    [ Commodity.make ~src:0 ~dst:1 ~amount:2.0;
      Commodity.make ~src:1 ~dst:2 ~amount:3.0 ]
  in
  Alcotest.(check (float 1e-9)) "total" 5.0 (Commodity.total ds)

let test_commodity_endpoints () =
  let ds =
    [ Commodity.make ~src:3 ~dst:1 ~amount:1.0;
      Commodity.make ~src:1 ~dst:2 ~amount:1.0 ]
  in
  Alcotest.(check (list int)) "sorted distinct" [ 1; 2; 3 ]
    (Commodity.endpoints ds);
  Alcotest.(check bool) "is_endpoint" true (Commodity.is_endpoint ds 3);
  Alcotest.(check bool) "not endpoint" false (Commodity.is_endpoint ds 0)

let test_commodity_normalize_merges () =
  let ds =
    [ Commodity.make ~src:0 ~dst:1 ~amount:2.0;
      Commodity.make ~src:1 ~dst:0 ~amount:3.0;
      Commodity.make ~src:2 ~dst:3 ~amount:1e-12 ]
  in
  match Commodity.normalize ds with
  | [ d ] ->
    Alcotest.(check (float 1e-9)) "merged amount" 5.0 d.Commodity.amount
  | other ->
    Alcotest.failf "expected one demand, got %d" (List.length other)

(* ---- Routing ---- *)

let test_routing_edge_load_and_satisfies () =
  let g = cycle ~capacity:2.0 () in
  let d = Commodity.make ~src:0 ~dst:2 ~amount:2.0 in
  (* Route 1 unit each way around the cycle. *)
  let r =
    [ { Routing.demand = d; paths = [ ([ 0; 1 ], 1.0); ([ 3; 2 ], 1.0) ] } ]
  in
  let load = Routing.edge_load g r in
  Alcotest.(check (float 1e-9)) "edge 0 load" 1.0 load.(0);
  Alcotest.(check bool) "fits" true (Routing.satisfies g ~cap:(cap_of g) r);
  Alcotest.(check (float 1e-9)) "satisfaction" 1.0
    (Routing.satisfaction ~demands:[ d ] r)

let test_routing_detects_overload () =
  let g = cycle ~capacity:0.5 () in
  let d = Commodity.make ~src:0 ~dst:2 ~amount:2.0 in
  let r = [ { Routing.demand = d; paths = [ ([ 0; 1 ], 2.0) ] } ] in
  Alcotest.(check bool) "overload" false (Routing.satisfies g ~cap:(cap_of g) r)

let test_routing_detects_wrong_path () =
  let g = cycle () in
  let d = Commodity.make ~src:0 ~dst:2 ~amount:1.0 in
  (* Path [0] goes 0->1, not 0->2. *)
  let r = [ { Routing.demand = d; paths = [ ([ 0 ], 1.0) ] } ] in
  Alcotest.(check bool) "wrong endpoint" false
    (Routing.satisfies g ~cap:(cap_of g) r)

let test_routing_partial_satisfaction () =
  let d = Commodity.make ~src:0 ~dst:2 ~amount:4.0 in
  let r = [ { Routing.demand = d; paths = [ ([ 0; 1 ], 1.0) ] } ] in
  Alcotest.(check (float 1e-9)) "quarter" 0.25
    (Routing.satisfaction ~demands:[ d ] r)

(* ---- Route_greedy ---- *)

let test_greedy_routes_single () =
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:15.0 ] in
  match Route_greedy.route_all ~cap:(cap_of g) g d with
  | Some r ->
    Alcotest.(check (float 1e-6)) "all routed" 15.0 (Routing.total_routed r);
    Alcotest.(check bool) "fits" true (Routing.satisfies g ~cap:(cap_of g) r)
  | None -> Alcotest.fail "expected routable"

let test_greedy_respects_capacity () =
  let g = fixture () in
  (* Max flow 0->5 is 20; 21 must fail. *)
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:21.0 ] in
  Alcotest.(check bool) "unroutable" true
    (Route_greedy.route_all ~cap:(cap_of g) g d = None)

let test_greedy_two_commodities_on_cycle () =
  (* Capacity 2 leaves slack, so sequential routing succeeds regardless
     of the side each demand picks.  (With capacity 1 the instance is
     still routable but needs the LP's coordination — see the oracle
     escalation test below.) *)
  let g = cycle ~capacity:2.0 () in
  let d =
    [ Commodity.make ~src:0 ~dst:2 ~amount:1.0;
      Commodity.make ~src:1 ~dst:3 ~amount:1.0 ]
  in
  match Route_greedy.route_all ~cap:(cap_of g) g d with
  | Some r ->
    Alcotest.(check (float 1e-6)) "both routed" 2.0 (Routing.total_routed r)
  | None -> Alcotest.fail "two unit demands fit a capacity-2 cycle"

let test_greedy_route_max_partial () =
  let g = Graph.make ~n:2 ~edges:[ (0, 1, 3.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:1 ~amount:5.0 ] in
  let r = Route_greedy.route_max ~cap:(cap_of g) g d in
  Alcotest.(check (float 1e-6)) "partial" 3.0 (Routing.total_routed r)

let test_greedy_respects_broken () =
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:1.0 ] in
  let vertex_ok v = v <> 1 && v <> 4 in
  Alcotest.(check bool) "no path" true
    (Route_greedy.route_all ~vertex_ok ~cap:(cap_of g) g d = None)

(* ---- Mcf_lp ---- *)

let test_mcf_lp_feasible_cycle () =
  let g = cycle () in
  let d =
    [ Commodity.make ~src:0 ~dst:2 ~amount:1.0;
      Commodity.make ~src:1 ~dst:3 ~amount:1.0 ]
  in
  match Mcf_lp.feasible ~cap:(cap_of g) g d with
  | Mcf_lp.Routable r ->
    Alcotest.(check bool) "routing fits" true
      (Routing.satisfies g ~cap:(cap_of g) r);
    Alcotest.(check (float 1e-6)) "complete" 2.0 (Routing.total_routed r)
  | _ -> Alcotest.fail "expected routable"

let test_mcf_lp_infeasible () =
  let g = cycle () in
  (* Three unit demands across the cycle exceed its capacity (each uses
     at least 2 of the 4 unit edges -> 6 > 4 edge-units). *)
  let d =
    [ Commodity.make ~src:0 ~dst:2 ~amount:1.0;
      Commodity.make ~src:1 ~dst:3 ~amount:1.0;
      Commodity.make ~src:0 ~dst:2 ~amount:1.0 ]
  in
  Alcotest.(check bool) "unroutable" true
    (Mcf_lp.feasible ~cap:(cap_of g) g d = Mcf_lp.Unroutable)

let test_mcf_lp_too_big () =
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:1.0 ] in
  Alcotest.(check bool) "budget" true
    (Mcf_lp.feasible ~var_budget:3 ~cap:(cap_of g) g d = Mcf_lp.Too_big)

let test_mcf_lp_broken_endpoint () =
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:1.0 ] in
  let vertex_ok v = v <> 0 in
  Alcotest.(check bool) "endpoint down" true
    (Mcf_lp.feasible ~vertex_ok ~cap:(cap_of g) g d = Mcf_lp.Unroutable)

let test_mcf_lp_max_scale_split () =
  (* The paper's dx LP on the path 0-1-2-3 (caps 10): splitting demand
     (0,3) of 5 on vertex 1 allows dx = 5 (complete split). *)
  let g =
    Graph.make ~n:4 ~edges:[ (0, 1, 10.0); (1, 2, 10.0); (2, 3, 10.0) ] ()
  in
  let h = Commodity.make ~src:0 ~dst:3 ~amount:5.0 in
  let param =
    [ (h, -1.0);
      (Commodity.make ~src:0 ~dst:1 ~amount:0.0, 1.0);
      (Commodity.make ~src:1 ~dst:3 ~amount:0.0, 1.0) ]
  in
  match Mcf_lp.max_scale ~cap:(cap_of g) ~tmax:5.0 g param with
  | `Max dx -> Alcotest.(check (float 1e-6)) "dx" 5.0 dx
  | _ -> Alcotest.fail "expected a maximum"

let test_mcf_lp_max_scale_capacity_bound () =
  (* Splitting through the weak chord 1-4 (cap 3) bounds dx at 3. *)
  let g = fixture () in
  let h = Commodity.make ~src:1 ~dst:5 ~amount:10.0 in
  (* Force everything through vertex... route (1,4) then (4,5):
     max through = min(maxflow(1,4), maxflow(4,5)) given other edges.
     Single chord path 1-4 has cap 3, but 1-0-3-4 adds 10. *)
  let param =
    [ (h, -1.0);
      (Commodity.make ~src:1 ~dst:4 ~amount:0.0, 1.0);
      (Commodity.make ~src:4 ~dst:5 ~amount:0.0, 1.0) ]
  in
  match Mcf_lp.max_scale ~cap:(cap_of g) ~tmax:10.0 g param with
  | `Max dx ->
    (* (4,5) edge caps the second leg at 10, (1,4)+(1,0,3,4) give 13;
       but leg 2 shares nothing, so dx = min(10, 13, 10) = 10. *)
    Alcotest.(check (float 1e-6)) "dx bounded" 10.0 dx
  | _ -> Alcotest.fail "expected a maximum"

let test_mcf_lp_max_total () =
  let g = Graph.make ~n:2 ~edges:[ (0, 1, 3.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:1 ~amount:5.0 ] in
  match Mcf_lp.max_total ~cap:(cap_of g) g d with
  | `Routing r ->
    Alcotest.(check (float 1e-6)) "capped at capacity" 3.0
      (Routing.total_routed r)
  | _ -> Alcotest.fail "expected a routing"

let test_mcf_lp_max_total_dead_endpoint () =
  let g = fixture () in
  let d =
    [ Commodity.make ~src:0 ~dst:5 ~amount:2.0;
      Commodity.make ~src:2 ~dst:3 ~amount:2.0 ]
  in
  let vertex_ok v = v <> 2 in
  match Mcf_lp.max_total ~vertex_ok ~cap:(cap_of g) g d with
  | `Routing r ->
    (* Only the first demand can be served. *)
    Alcotest.(check (float 1e-6)) "partial" 2.0 (Routing.total_routed r)
  | _ -> Alcotest.fail "expected a routing"

(* ---- Gk ---- *)

let test_gk_certifies_feasible () =
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:10.0 ] in
  let { Gk.lambda; routing } =
    Gk.max_concurrent ~eps:0.05 ~cap:(cap_of g) g d
  in
  Alcotest.(check bool) "lambda >= 1" true (lambda >= 1.0);
  Alcotest.(check bool) "routing fits" true
    (Routing.satisfies g ~cap:(cap_of g) routing);
  Alcotest.(check (float 1e-3)) "serves the demand" 10.0
    (Routing.total_routed routing)

let test_gk_detects_overload () =
  let g = cycle () in
  let d = [ Commodity.make ~src:0 ~dst:2 ~amount:10.0 ] in
  (* lambda* = 2/10 = 0.2 *)
  let { Gk.lambda; _ } = Gk.max_concurrent ~eps:0.05 ~cap:(cap_of g) g d in
  Alcotest.(check bool) "low lambda" true (lambda < 0.3)

let test_gk_disconnected () =
  let g = Graph.make ~n:3 ~edges:[ (0, 1, 1.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:2 ~amount:1.0 ] in
  let { Gk.lambda; _ } = Gk.max_concurrent ~cap:(cap_of g) g d in
  Alcotest.(check (float 1e-9)) "zero" 0.0 lambda

let test_gk_max_sum_respects_caps () =
  let g = fixture () in
  let d =
    [ Commodity.make ~src:0 ~dst:5 ~amount:30.0;
      Commodity.make ~src:2 ~dst:3 ~amount:30.0 ]
  in
  let r = Gk.max_sum ~eps:0.05 ~cap:(cap_of g) g d in
  Alcotest.(check bool) "feasible" true (Routing.satisfies g ~cap:(cap_of g) r)

let test_gk_max_sum_near_optimal_single () =
  (* Single demand of 30 on a graph with max flow 20: max-sum should
     serve close to 20. *)
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:30.0 ] in
  let r = Gk.max_sum ~eps:0.05 ~cap:(cap_of g) g d in
  let total = Routing.total_routed r in
  Alcotest.(check bool) "near 20" true (total >= 16.0 && total <= 20.0 +. 1e-6)

let test_gk_max_sum_caps_demand () =
  (* Demand 5 on a fat graph: serve exactly 5, not more. *)
  let g = fixture () in
  let d = [ Commodity.make ~src:0 ~dst:5 ~amount:5.0 ] in
  let r = Gk.max_sum ~eps:0.05 ~cap:(cap_of g) g d in
  Alcotest.(check bool) "at most demand" true
    (Routing.total_routed r <= 5.0 +. 1e-6);
  Alcotest.(check bool) "most of it" true (Routing.total_routed r >= 4.0)

let test_gk_max_sum_empty () =
  let g = fixture () in
  Alcotest.(check int) "no assignments" 0
    (List.length (Gk.max_sum ~cap:(cap_of g) g []))

let gk_feasibility_certificate_prop =
  QCheck.Test.make ~name:"gk routing always capacity-feasible" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:12 ~p:0.4 ~capacity:5.0
      in
      let n = Graph.nv g in
      if Graph.ne g < 3 then true
      else begin
        let d =
          [ Commodity.make ~src:0 ~dst:(n - 1) ~amount:3.0;
            Commodity.make ~src:1 ~dst:(n - 2) ~amount:2.0 ]
        in
        let { Gk.routing; _ } =
          Gk.max_concurrent ~eps:0.1 ~cap:(cap_of g) g d
        in
        Routing.satisfies g ~cap:(cap_of g) routing
      end)

(* ---- Oracle ---- *)

let test_oracle_empty_demands () =
  let g = cycle () in
  Alcotest.(check bool) "trivially routable" true
    (match Oracle.routable ~cap:(cap_of g) g [] with
    | Oracle.Routable _ -> true
    | _ -> false)

let test_oracle_connectivity_shortcut () =
  let g = Graph.make ~n:3 ~edges:[ (0, 1, 1.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:2 ~amount:1.0 ] in
  Alcotest.(check bool) "unroutable" true
    (Oracle.routable ~cap:(cap_of g) g d = Oracle.Unroutable)

let test_oracle_escalates_to_lp () =
  (* A case greedy sequential routing fails but the LP solves: the
     "fish" instance — two demands whose greedy-first path choice blocks
     the other, while a coordinated split works. *)
  let g = cycle () in
  let d =
    [ Commodity.make ~src:0 ~dst:2 ~amount:1.0;
      Commodity.make ~src:1 ~dst:3 ~amount:1.0 ]
  in
  match Oracle.routable ~cap:(cap_of g) g d with
  | Oracle.Routable r ->
    Alcotest.(check bool) "fits" true (Routing.satisfies g ~cap:(cap_of g) r)
  | _ -> Alcotest.fail "expected routable"

let test_oracle_zero_capacity_edges () =
  let g = Graph.make ~n:2 ~edges:[ (0, 1, 1.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:1 ~amount:0.5 ] in
  Alcotest.(check bool) "capacity exhausted" true
    (Oracle.routable ~cap:(fun _ -> 0.0) g d = Oracle.Unroutable)

let test_oracle_max_satisfiable () =
  let g = Graph.make ~n:2 ~edges:[ (0, 1, 3.0) ] () in
  let d = [ Commodity.make ~src:0 ~dst:1 ~amount:5.0 ] in
  let r = Oracle.max_satisfiable ~cap:(cap_of g) g d in
  Alcotest.(check (float 1e-6)) "3 of 5" 3.0 (Routing.total_routed r)

(* A single commodity's multicommodity LP degenerates to max flow:
   max_total must match Dinic's value exactly. *)
let mcf_single_equals_maxflow_prop =
  QCheck.Test.make ~name:"single-commodity max_total = max flow" ~count:25
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 200) in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:9 ~p:0.4 ~capacity:3.0
      in
      let n = Graph.nv g in
      let flow = Maxflow.max_flow_value g ~source:0 ~sink:(n - 1) in
      let big_demand = flow +. 10.0 in
      match
        Mcf_lp.max_total ~cap:(cap_of g) g
          [ Commodity.make ~src:0 ~dst:(n - 1) ~amount:big_demand ]
      with
      | `Routing r -> abs_float (Routing.total_routed r -. flow) < 1e-5
      | `Too_big | `Undecided -> true)

(* GK max_sum is a certified lower bound of the exact max_total LP. *)
let gk_max_sum_lower_bound_prop =
  QCheck.Test.make ~name:"gk max_sum <= exact max_total" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 300) in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:10 ~p:0.4 ~capacity:4.0
      in
      let n = Graph.nv g in
      let demands =
        [ Commodity.make ~src:0 ~dst:(n - 1) ~amount:6.0;
          Commodity.make ~src:1 ~dst:(n - 2) ~amount:6.0 ]
      in
      let gk = Gk.max_sum ~eps:0.1 ~cap:(cap_of g) g demands in
      match Mcf_lp.max_total ~cap:(cap_of g) g demands with
      | `Routing lp ->
        Routing.total_routed gk <= Routing.total_routed lp +. 1e-5
        && Routing.satisfies g ~cap:(cap_of g) gk
      | `Too_big | `Undecided -> true)

(* dx from max_scale can never exceed the demand nor break feasibility:
   re-checking the scaled demand set must stay routable. *)
let max_scale_sound_prop =
  QCheck.Test.make ~name:"max_scale result is actually routable" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 400) in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:8 ~p:0.5 ~capacity:5.0
      in
      let n = Graph.nv g in
      if not (Netrec_graph.Traverse.is_connected g) then true
      else begin
        let h = Commodity.make ~src:0 ~dst:(n - 1) ~amount:4.0 in
        let mid = n / 2 in
        if mid = 0 || mid = n - 1 then true
        else begin
          let param =
            [ (h, -1.0);
              (Commodity.make ~src:0 ~dst:mid ~amount:0.0, 1.0);
              (Commodity.make ~src:mid ~dst:(n - 1) ~amount:0.0, 1.0) ]
          in
          match Mcf_lp.max_scale ~cap:(cap_of g) ~tmax:4.0 g param with
          | `Too_big | `Undecided -> true
          | `Max dx ->
            dx <= 4.0 +. 1e-6
            &&
            (dx <= 1e-9
            ||
            let demands' =
              [ { h with Commodity.amount = 4.0 -. dx };
                Commodity.make ~src:0 ~dst:mid ~amount:dx;
                Commodity.make ~src:mid ~dst:(n - 1) ~amount:dx ]
              |> List.filter (fun d -> d.Commodity.amount > 1e-9)
            in
            (match Mcf_lp.feasible ~cap:(cap_of g) g demands' with
            | Mcf_lp.Routable _ -> true
            | Mcf_lp.Unroutable -> false
            | _ -> true))
        end
      end)

let oracle_matches_lp_prop =
  QCheck.Test.make ~name:"oracle verdict consistent with exact LP" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g =
        Netrec_graph.Generate.erdos_renyi ~rng ~n:10 ~p:0.35 ~capacity:2.0
      in
      let n = Graph.nv g in
      let d =
        [ Commodity.make ~src:0 ~dst:(n - 1) ~amount:1.5;
          Commodity.make ~src:1 ~dst:(n - 2) ~amount:1.5 ]
      in
      let oracle = Oracle.routable ~cap:(cap_of g) g d in
      let lp = Mcf_lp.feasible ~cap:(cap_of g) g d in
      match (oracle, lp) with
      | Oracle.Routable _, Mcf_lp.Routable _ -> true
      | Oracle.Unroutable, Mcf_lp.Unroutable -> true
      | Oracle.Unknown, _ -> true (* inconclusive is allowed *)
      | _ -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netrec_flow"
    [ ( "commodity",
        [ tc "make rejects" test_commodity_make_rejects;
          tc "total" test_commodity_total;
          tc "endpoints" test_commodity_endpoints;
          tc "normalize merges" test_commodity_normalize_merges ] );
      ( "routing",
        [ tc "edge load + satisfies" test_routing_edge_load_and_satisfies;
          tc "detects overload" test_routing_detects_overload;
          tc "detects wrong path" test_routing_detects_wrong_path;
          tc "partial satisfaction" test_routing_partial_satisfaction ] );
      ( "route_greedy",
        [ tc "routes single" test_greedy_routes_single;
          tc "respects capacity" test_greedy_respects_capacity;
          tc "two commodities on cycle" test_greedy_two_commodities_on_cycle;
          tc "route_max partial" test_greedy_route_max_partial;
          tc "respects broken" test_greedy_respects_broken ] );
      ( "mcf_lp",
        [ tc "feasible cycle" test_mcf_lp_feasible_cycle;
          tc "infeasible" test_mcf_lp_infeasible;
          tc "too big" test_mcf_lp_too_big;
          tc "broken endpoint" test_mcf_lp_broken_endpoint;
          tc "max_scale split" test_mcf_lp_max_scale_split;
          tc "max_scale capacity bound" test_mcf_lp_max_scale_capacity_bound;
          tc "max_total" test_mcf_lp_max_total;
          tc "max_total dead endpoint" test_mcf_lp_max_total_dead_endpoint;
          QCheck_alcotest.to_alcotest mcf_single_equals_maxflow_prop;
          QCheck_alcotest.to_alcotest max_scale_sound_prop;
          QCheck_alcotest.to_alcotest gk_max_sum_lower_bound_prop ] );
      ( "gk",
        [ tc "certifies feasible" test_gk_certifies_feasible;
          tc "detects overload" test_gk_detects_overload;
          tc "disconnected" test_gk_disconnected;
          tc "max_sum respects caps" test_gk_max_sum_respects_caps;
          tc "max_sum near optimal" test_gk_max_sum_near_optimal_single;
          tc "max_sum caps demand" test_gk_max_sum_caps_demand;
          tc "max_sum empty" test_gk_max_sum_empty;
          QCheck_alcotest.to_alcotest gk_feasibility_certificate_prop ] );
      ( "oracle",
        [ tc "empty demands" test_oracle_empty_demands;
          tc "connectivity shortcut" test_oracle_connectivity_shortcut;
          tc "escalates to lp" test_oracle_escalates_to_lp;
          tc "zero capacity" test_oracle_zero_capacity_edges;
          tc "max satisfiable" test_oracle_max_satisfiable;
          QCheck_alcotest.to_alcotest oracle_matches_lp_prop ] ) ]
