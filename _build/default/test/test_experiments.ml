open Netrec_experiments
module Rng = Netrec_util.Rng
module Table = Netrec_util.Table
module Instance = Netrec_core.Instance
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity

let bc = Netrec_topo.Bell_canada.graph ()

(* ---- Common ---- *)

let test_average () =
  let m x =
    { Common.repairs_v = x;
      repairs_e = 2.0 *. x;
      repairs_total = 3.0 *. x;
      satisfied = x /. 10.0;
      seconds = x }
  in
  let avg = Common.average [ m 1.0; m 3.0 ] in
  Alcotest.(check (float 1e-9)) "v" 2.0 avg.Common.repairs_v;
  Alcotest.(check (float 1e-9)) "e" 4.0 avg.Common.repairs_e;
  Alcotest.(check (float 1e-9)) "total" 6.0 avg.Common.repairs_total;
  Alcotest.(check (float 1e-9)) "satisfied" 0.2 avg.Common.satisfied

let test_average_empty_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Common.average: no measurements") (fun () ->
      ignore (Common.average []))

let test_percent () =
  Alcotest.(check (float 1e-9)) "percent" 42.0 (Common.percent 0.42)

let test_feasible_demands_routable () =
  let rng = Rng.create 11 in
  let demands = Common.feasible_demands ~rng ~count:4 ~amount:12.0 bc in
  Alcotest.(check int) "count" 4 (List.length demands);
  match
    Netrec_flow.Oracle.routable
      ~cap:(Netrec_graph.Graph.capacity bc)
      bc demands
  with
  | Netrec_flow.Oracle.Routable _ -> ()
  | _ -> Alcotest.fail "generated demands must be routable when intact"

let test_complete_instance_breaks_everything () =
  let rng = Rng.create 3 in
  let inst = Common.complete_instance ~rng ~count:2 ~amount:5.0 bc in
  let bv, be = Failure.counts inst.Instance.failure in
  Alcotest.(check int) "all vertices" (Netrec_graph.Graph.nv bc) bv;
  Alcotest.(check int) "all edges" (Netrec_graph.Graph.ne bc) be

let test_measure_runs_algorithm () =
  let rng = Rng.create 5 in
  let inst = Common.complete_instance ~rng ~count:2 ~amount:5.0 bc in
  let m = Common.measure inst (fun () -> Netrec_heuristics.Srt.solve inst) in
  Alcotest.(check bool) "positive repairs" true (m.Common.repairs_total > 0.0);
  Alcotest.(check bool) "sane satisfaction" true
    (m.Common.satisfied >= 0.0 && m.Common.satisfied <= 1.0);
  Alcotest.(check bool) "timed" true (m.Common.seconds >= 0.0)

(* ---- figure integration smoke (single cheap point each) ---- *)

let row_floats table_row = List.map float_of_string table_row

let test_fig4_single_point () =
  match Fig4.run ~runs:1 ~opt_nodes:5 ~seed:1 ~max_pairs:1 () with
  | [ edges_t; nodes_t; total_t; sat_t ] ->
    List.iter
      (fun t ->
        let csv = Table.to_csv t in
        Alcotest.(check bool) "two lines" true
          (List.length (String.split_on_char '\n' csv) = 2))
      [ edges_t; nodes_t; total_t; sat_t ];
    (* Check series sanity on the total-repairs table: ISP <= ALL and
       OPT <= ISP. *)
    let csv = Table.to_csv total_t in
    (match String.split_on_char '\n' csv with
    | [ _; row ] -> (
      match row_floats (String.split_on_char ',' row) with
      | [ _pairs; isp; opt; _srt; _gcom; _gnc; all ] ->
        Alcotest.(check bool) "isp <= all" true (isp <= all);
        Alcotest.(check bool) "opt <= isp" true (opt <= isp +. 1e-9)
      | _ -> Alcotest.fail "unexpected arity")
    | _ -> Alcotest.fail "unexpected table shape")
  | _ -> Alcotest.fail "fig4 must emit four tables"

let test_ablation_single_run () =
  match Ablation.run ~runs:1 ~seed:2 () with
  | metric_t :: sched_t :: srt_t :: _ ->
    let rows t = List.length (String.split_on_char '\n' (Table.to_csv t)) - 1 in
    Alcotest.(check int) "metric rows" 3 (rows metric_t);
    Alcotest.(check int) "sched rows" 3 (rows sched_t);
    Alcotest.(check int) "srt rows" 3 (rows srt_t)
  | _ -> Alcotest.fail "ablation must emit its tables"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "netrec_experiments"
    [ ( "common",
        [ tc "average" test_average;
          tc "average empty" test_average_empty_rejected;
          tc "percent" test_percent;
          tc "feasible demands routable" test_feasible_demands_routable;
          tc "complete instance" test_complete_instance_breaks_everything;
          tc "measure" test_measure_runs_algorithm ] );
      ( "figures",
        [ slow "fig4 single point" test_fig4_single_point;
          slow "ablation single run" test_ablation_single_run ] ) ]
