open Netrec_graph
open Netrec_disrupt
module Rng = Netrec_util.Rng

let grid () = Generate.grid ~width:5 ~height:5 ~capacity:10.0

(* ---- Failure ---- *)

let test_none_and_complete () =
  let g = grid () in
  let none = Failure.none g in
  Alcotest.(check (pair int int)) "none" (0, 0) (Failure.counts none);
  let full = Failure.complete g in
  Alcotest.(check (pair int int)) "complete" (Graph.nv g, Graph.ne g)
    (Failure.counts full)

let test_of_lists () =
  let g = grid () in
  let f = Failure.of_lists g ~vertices:[ 0; 3 ] ~edges:[ 1 ] in
  Alcotest.(check bool) "vertex broken" true (Failure.vertex_broken f 0);
  Alcotest.(check bool) "vertex ok" true (Failure.vertex_ok f 1);
  Alcotest.(check bool) "edge broken" true (Failure.edge_broken f 1);
  Alcotest.(check (list int)) "vertex list" [ 0; 3 ] (Failure.broken_vertex_list f);
  Alcotest.(check (list int)) "edge list" [ 1 ] (Failure.broken_edge_list f)

let test_of_lists_rejects () =
  let g = grid () in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Failure.of_lists: vertex")
    (fun () -> ignore (Failure.of_lists g ~vertices:[ 99 ] ~edges:[]))

let test_edge_usable () =
  let g = grid () in
  let f = Failure.of_lists g ~vertices:[ 0 ] ~edges:[] in
  (* Edges incident to broken vertex 0 are unusable even if unbroken. *)
  let bad = List.map snd (Graph.incident g 0) in
  List.iter
    (fun e ->
      Alcotest.(check bool) "incident unusable" false (Failure.edge_usable f g e))
    bad;
  Alcotest.(check bool) "far edge usable" true
    (Failure.edge_usable f g (Option.get (Graph.find_edge g 23 24)))

let test_copy_independent () =
  let g = grid () in
  let f = Failure.complete g in
  let f' = Failure.copy f in
  f'.Failure.broken_vertices.(0) <- false;
  Alcotest.(check bool) "original untouched" true (Failure.vertex_broken f 0)

(* ---- Models ---- *)

let test_barycenter_grid () =
  let g = grid () in
  let x, y = Models.barycenter g in
  Alcotest.(check (float 1e-9)) "x" 2.0 x;
  Alcotest.(check (float 1e-9)) "y" 2.0 y

let test_barycenter_requires_coords () =
  let g = Graph.make ~n:2 ~edges:[ (0, 1, 1.0) ] () in
  Alcotest.check_raises "no coords"
    (Invalid_argument "Disrupt: graph has no coordinates") (fun () ->
      ignore (Models.barycenter g))

let test_gaussian_epicenter_always_fails () =
  let g = grid () in
  (* Tiny variance: only the exact epicenter vertex (2,2) = id 12 fails
     with probability ~1; far vertices essentially never. *)
  let rng = Rng.create 5 in
  let f = Models.gaussian ~rng ~variance:0.01 g in
  Alcotest.(check bool) "center broken" true (Failure.vertex_broken f 12);
  Alcotest.(check bool) "corner intact" true (Failure.vertex_ok f 0)

let test_gaussian_monotone_in_variance () =
  let g = grid () in
  let sizes =
    List.map
      (fun variance ->
        (* average over several draws to smooth the randomness *)
        let total = ref 0 in
        for seed = 1 to 10 do
          let f = Models.gaussian ~rng:(Rng.create seed) ~variance g in
          let bv, be = Failure.counts f in
          total := !total + bv + be
        done;
        !total)
      [ 0.5; 4.0; 50.0 ]
  in
  match sizes with
  | [ small; medium; large ] ->
    Alcotest.(check bool) "growing" true (small < medium && medium < large)
  | _ -> assert false

let test_gaussian_deterministic_per_seed () =
  let g = grid () in
  let f1 = Models.gaussian ~rng:(Rng.create 3) ~variance:2.0 g in
  let f2 = Models.gaussian ~rng:(Rng.create 3) ~variance:2.0 g in
  Alcotest.(check (pair int int)) "same counts" (Failure.counts f1)
    (Failure.counts f2);
  Alcotest.(check (list int)) "same vertices" (Failure.broken_vertex_list f1)
    (Failure.broken_vertex_list f2)

let test_gaussian_custom_epicenter () =
  let g = grid () in
  let rng = Rng.create 9 in
  let f = Models.gaussian ~rng ~epicenter:(0.0, 0.0) ~variance:0.01 g in
  Alcotest.(check bool) "corner broken" true (Failure.vertex_broken f 0);
  Alcotest.(check bool) "center intact" true (Failure.vertex_ok f 12)

let test_uniform_extremes () =
  let g = grid () in
  let rng = Rng.create 1 in
  let all = Models.uniform ~rng ~p_vertex:1.0 ~p_edge:1.0 g in
  Alcotest.(check (pair int int)) "all" (Graph.nv g, Graph.ne g)
    (Failure.counts all);
  let none = Models.uniform ~rng ~p_vertex:0.0 ~p_edge:0.0 g in
  Alcotest.(check (pair int int)) "none" (0, 0) (Failure.counts none)

let test_expected_failures_bounds () =
  let g = grid () in
  let e = Models.expected_gaussian_failures ~variance:4.0 g in
  Alcotest.(check bool) "positive" true (e > 0.0);
  Alcotest.(check bool) "bounded" true
    (e <= float_of_int (Graph.nv g + Graph.ne g))

let gaussian_respects_probability_prop =
  QCheck.Test.make ~name:"gaussian failure count near expectation" ~count:20
    QCheck.small_int (fun seed ->
      let g = Generate.grid ~width:6 ~height:6 ~capacity:1.0 in
      let variance = 3.0 in
      let expected = Models.expected_gaussian_failures ~variance g in
      let totals =
        List.init 30 (fun i ->
            let f =
              Models.gaussian ~rng:(Rng.create ((31 * seed) + i)) ~variance g
            in
            let bv, be = Failure.counts f in
            float_of_int (bv + be))
      in
      let mean = Netrec_util.Stats.mean totals in
      abs_float (mean -. expected) < 0.35 *. expected +. 3.0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netrec_disrupt"
    [ ( "failure",
        [ tc "none and complete" test_none_and_complete;
          tc "of_lists" test_of_lists;
          tc "of_lists rejects" test_of_lists_rejects;
          tc "edge usable" test_edge_usable;
          tc "copy independent" test_copy_independent ] );
      ( "models",
        [ tc "barycenter grid" test_barycenter_grid;
          tc "barycenter requires coords" test_barycenter_requires_coords;
          tc "epicenter always fails" test_gaussian_epicenter_always_fails;
          tc "monotone in variance" test_gaussian_monotone_in_variance;
          tc "deterministic per seed" test_gaussian_deterministic_per_seed;
          tc "custom epicenter" test_gaussian_custom_epicenter;
          tc "uniform extremes" test_uniform_extremes;
          tc "expected failures bounds" test_expected_failures_bounds;
          QCheck_alcotest.to_alcotest gaussian_respects_probability_prop ] ) ]
