test/test_graph.ml: Alcotest Array Dijkstra Generate Graph List Maxflow Metrics Netrec_graph Netrec_util Option Paths QCheck QCheck_alcotest Traverse
