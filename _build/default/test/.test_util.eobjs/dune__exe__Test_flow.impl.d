test/test_flow.ml: Alcotest Array Commodity Gk Graph List Maxflow Mcf_lp Netrec_flow Netrec_graph Netrec_util Oracle QCheck QCheck_alcotest Route_greedy Routing
