test/test_util.ml: Alcotest Array List Netrec_util Num Pqueue QCheck QCheck_alcotest Rng Stats String Table
