test/test_flow.mli:
