test/test_disrupt.ml: Alcotest Array Failure Generate Graph List Models Netrec_disrupt Netrec_graph Netrec_util Option QCheck QCheck_alcotest
