test/test_disrupt.mli:
