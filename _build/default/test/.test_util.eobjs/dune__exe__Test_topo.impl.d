test/test_topo.ml: Abilene Alcotest Bell_canada Caida Demand_gen Generate Graph List Maxflow Metrics Netrec_flow Netrec_graph Netrec_topo Netrec_util Traverse
