test/test_lp.ml: Alcotest Array Hashtbl List Lp Milp Netrec_lp Netrec_util QCheck QCheck_alcotest
