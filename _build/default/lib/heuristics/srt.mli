(** Shortest Path Heuristic (SRT, paper §VI-B).

    Demands are processed in decreasing order of flow; for each demand the
    first shortest paths whose joint maximum flow covers the demand are
    repaired wholesale.  Demands are treated independently (each against
    nominal capacities), so repaired paths may be shared and saturated —
    SRT has the fewest repairs of all heuristics but may lose demand
    (Fig. 4(d)). *)

open Netrec_core

val solve : Instance.t -> Instance.solution
(** Run SRT.  The returned solution carries no routing (the heuristic
    gives no routing guarantee; satisfaction is measured by
    {!Netrec_core.Evaluate.assess}). *)

val solve_residual : Instance.t -> Instance.solution
(** SRT-R: a residual-aware strengthening of SRT (not in the paper; an
    ablation baseline).  Demands are still processed independently in
    decreasing order, but each is routed over {e residual} capacities
    with a repair-cost-aware length, the chosen paths are repaired, and
    the flow is committed — so later demands see what earlier ones
    consumed.  It repairs more than SRT but rarely loses demand,
    isolating how much of SRT's loss comes from ignoring capacity
    consumption. *)
