(* Dreyfus-Wagner over hop distances.  S.(mask).(v) = minimum edge count
   of a tree spanning terminal set [mask] plus vertex [v]. *)

let infty = max_int / 4

let steiner_tree_hops g ~terminals =
  let terminals = List.sort_uniq compare terminals in
  match terminals with
  | [] | [ _ ] -> Some 0
  | _ ->
    let k = List.length terminals in
    if k > 16 then invalid_arg "Exact_forest: too many terminals";
    let n = Graph.nv g in
    let term = Array.of_list terminals in
    let dist =
      Array.map
        (fun t ->
          let d = Traverse.bfs_dist g t in
          Array.map (fun x -> if x = max_int then infty else x) d)
        term
    in
    (* Mutual connectivity check. *)
    let connected =
      Array.for_all (fun t -> dist.(0).(t) < infty) term
    in
    if not connected then None
    else begin
      (* dist_any.(v).(u) needed for the relaxation step: hop distance
         between arbitrary vertices.  One BFS per vertex is fine at the
         sizes Fig. 7 uses (n = 100). *)
      let all_dist =
        Array.init n (fun v ->
            let d = Traverse.bfs_dist g v in
            Array.map (fun x -> if x = max_int then infty else x) d)
      in
      let size = 1 lsl k in
      let s = Array.make_matrix size n infty in
      for i = 0 to k - 1 do
        let mask = 1 lsl i in
        for v = 0 to n - 1 do
          s.(mask).(v) <- dist.(i).(v)
        done
      done;
      for mask = 1 to size - 1 do
        if mask land (mask - 1) <> 0 then begin
          (* merge step: split mask into sub + rest at the same vertex;
             each unordered split is visited once (sub <= rest). *)
          let tmp = Array.make n infty in
          let sub = ref ((mask - 1) land mask) in
          while !sub > 0 do
            let rest = mask lxor !sub in
            if !sub <= rest then
              for v = 0 to n - 1 do
                let c = s.(!sub).(v) + s.(rest).(v) in
                if c < tmp.(v) then tmp.(v) <- c
              done;
            sub := (!sub - 1) land mask
          done;
          (* relaxation step: attach via a shortest path *)
          for v = 0 to n - 1 do
            let best = ref tmp.(v) in
            for u = 0 to n - 1 do
              if tmp.(u) < infty then begin
                let c = tmp.(u) + all_dist.(u).(v) in
                if c < !best then best := c
              end
            done;
            s.(mask).(v) <- !best
          done
        end
      done;
      let full = size - 1 in
      Some s.(full).(term.(0))
    end

(* Set partitions of [0 .. n-1] via restricted-growth strings. *)
let partitions n =
  let acc = ref [] in
  let assign = Array.make n 0 in
  let rec go i maxg =
    if i = n then begin
      let groups = Array.make (maxg + 1) [] in
      for j = n - 1 downto 0 do
        groups.(assign.(j)) <- j :: groups.(assign.(j))
      done;
      acc := Array.to_list groups :: !acc
    end
    else
      for gidx = 0 to maxg + 1 do
        assign.(i) <- gidx;
        go (i + 1) (max maxg gidx)
      done
  in
  if n = 0 then [ [] ]
  else begin
    go 0 (-1);
    !acc
  end

let optimal_total_repairs g ~pairs =
  let pairs = List.filter (fun (s, t) -> s <> t) pairs in
  if List.length pairs > 8 then None
  else begin
    (* Pre-merge pairs sharing an endpoint: forest components are vertex
       disjoint, so such pairs necessarily share a component. *)
    let np = List.length pairs in
    let parr = Array.of_list pairs in
    (* Union-find over pair indices: pairs sharing an endpoint must end up
       in the same forest component. *)
    let parent = Array.init np (fun i -> i) in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        let a, b = parr.(i) and c, d = parr.(j) in
        if a = c || a = d || b = c || b = d then union i j
      done
    done;
    let block_tbl = Hashtbl.create np in
    for i = np - 1 downto 0 do
      let r = find i in
      let members = Option.value ~default:[] (Hashtbl.find_opt block_tbl r) in
      Hashtbl.replace block_tbl r (i :: members)
    done;
    let blocks = Hashtbl.fold (fun _ members acc -> members :: acc) block_tbl [] in
    let nb = List.length blocks in
    let barr = Array.of_list blocks in
    let terminals_of_block b =
      List.concat_map
        (fun i ->
          let s, t = parr.(i) in
          [ s; t ])
        b
      |> List.sort_uniq compare
    in
    (* Cache Steiner-tree costs per terminal set. *)
    let cache = Hashtbl.create 64 in
    let tree_cost terms =
      match Hashtbl.find_opt cache terms with
      | Some c -> c
      | None ->
        let c = steiner_tree_hops g ~terminals:terms in
        Hashtbl.replace cache terms c;
        c
    in
    let best = ref None in
    List.iter
      (fun partition ->
        (* partition is a list of groups of block indices *)
        let cost =
          List.fold_left
            (fun acc group ->
              match acc with
              | None -> None
              | Some total ->
                let terms =
                  List.concat_map
                    (fun bi -> terminals_of_block barr.(bi))
                    group
                  |> List.sort_uniq compare
                in
                (match tree_cost terms with
                | None -> None
                | Some edges -> Some (total + (2 * edges) + 1)))
            (Some 0) partition
        in
        match (cost, !best) with
        | Some c, None -> best := Some c
        | Some c, Some b when c < b -> best := Some c
        | _ -> ())
      (partitions nb);
    !best
  end
