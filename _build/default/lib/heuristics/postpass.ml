module Routing = Netrec_flow.Routing
module Oracle = Netrec_flow.Oracle
open Netrec_core

type element = V of Graph.vertex | E of Graph.edge_id

let prune ?(max_rounds = 3) inst sol =
  let g = inst.Instance.graph in
  let kept_v = Array.make (Graph.nv g) false in
  let kept_e = Array.make (Graph.ne g) false in
  List.iter (fun v -> kept_v.(v) <- true) sol.Instance.repaired_vertices;
  List.iter (fun e -> kept_e.(e) <- true) sol.Instance.repaired_edges;
  let current () =
    let indices a =
      List.filteri (fun i _ -> a.(i)) (List.init (Array.length a) (fun i -> i))
    in
    { Instance.repaired_vertices = indices kept_v;
      repaired_edges = indices kept_e;
      routing = Routing.empty }
  in
  let routable () =
    let sol = current () in
    match
      Oracle.routable
        ~vertex_ok:(Instance.repaired_vertex_ok inst sol)
        ~edge_ok:(Instance.repaired_edge_ok inst sol)
        ~cap:(Graph.capacity g) g inst.Instance.demands
    with
    | Oracle.Routable r -> Some r
    | Oracle.Unroutable | Oracle.Unknown -> None
  in
  match routable () with
  | None -> sol (* not feasible to begin with: nothing to prune safely *)
  | Some routing0 ->
    let last_routing = ref routing0 in
    let cost = function
      | V v -> inst.Instance.vertex_cost.(v)
      | E e -> inst.Instance.edge_cost.(e)
    in
    let round () =
      let candidates =
        List.map (fun v -> V v) (current ()).Instance.repaired_vertices
        @ List.map (fun e -> E e) (current ()).Instance.repaired_edges
      in
      let candidates =
        List.stable_sort (fun a b -> compare (cost b) (cost a)) candidates
      in
      let progress = ref false in
      List.iter
        (fun el ->
          let set value =
            match el with
            | V v -> kept_v.(v) <- value
            | E e -> kept_e.(e) <- value
          in
          set false;
          match routable () with
          | Some r ->
            last_routing := r;
            progress := true
          | None -> set true)
        candidates;
      !progress
    in
    let rec loop n = if n > 0 && round () then loop (n - 1) in
    loop max_rounds;
    { (current ()) with Instance.routing = !last_routing }
