lib/heuristics/greedy.ml: Array Dijkstra Float Graph Instance List Netrec_core Netrec_disrupt Netrec_flow Option Path_enum Paths
