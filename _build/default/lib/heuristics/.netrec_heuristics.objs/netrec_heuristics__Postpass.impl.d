lib/heuristics/postpass.ml: Array Graph Instance List Netrec_core Netrec_flow
