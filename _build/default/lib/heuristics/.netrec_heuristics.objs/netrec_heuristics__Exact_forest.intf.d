lib/heuristics/exact_forest.mli: Graph
