lib/heuristics/opt.mli: Instance Netrec_core
