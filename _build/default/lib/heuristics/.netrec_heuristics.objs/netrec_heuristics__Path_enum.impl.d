lib/heuristics/path_enum.ml: Array Graph List Netrec_flow Option Paths
