lib/heuristics/exact_forest.ml: Array Graph Hashtbl List Option Traverse
