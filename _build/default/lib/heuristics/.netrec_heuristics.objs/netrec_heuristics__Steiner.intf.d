lib/heuristics/steiner.mli: Graph Netrec_core
