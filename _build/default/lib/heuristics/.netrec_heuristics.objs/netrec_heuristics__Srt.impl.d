lib/heuristics/srt.ml: Array Dijkstra Float Graph Instance List Netrec_core Netrec_disrupt Netrec_flow Paths
