lib/heuristics/path_enum.mli: Graph Netrec_flow Paths
