lib/heuristics/greedy.mli: Instance Netrec_core
