lib/heuristics/opt.ml: Array Float Graph Hashtbl Instance Isp List Maxflow Netrec_core Netrec_disrupt Netrec_flow Netrec_lp Postpass Unix
