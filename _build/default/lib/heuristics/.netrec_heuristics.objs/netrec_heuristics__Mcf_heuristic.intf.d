lib/heuristics/mcf_heuristic.mli: Instance Netrec_core
