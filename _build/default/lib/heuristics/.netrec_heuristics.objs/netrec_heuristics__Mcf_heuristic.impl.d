lib/heuristics/mcf_heuristic.ml: Array Graph Hashtbl Instance List Netrec_core Netrec_disrupt Netrec_flow Netrec_lp Postpass
