lib/heuristics/srt.mli: Instance Netrec_core
