lib/heuristics/steiner.ml: Array Float Graph Hashtbl Instance List Netrec_core Netrec_disrupt Netrec_flow Postpass Traverse
