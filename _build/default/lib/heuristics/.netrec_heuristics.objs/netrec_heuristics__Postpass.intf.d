lib/heuristics/postpass.mli: Instance Netrec_core
