(** Goemans–Williamson primal-dual Steiner forest (2-approximation).

    The paper proves MinR NP-hard by reduction {e from} Steiner Forest
    (Thm. 1): when capacities dwarf demands, MinR {e is} Steiner Forest
    on the broken network.  This module implements the classic
    moat-growing 2-approximation with reverse-delete and adapts it to
    recovery instances: edge weights are the repair cost of the edge plus
    half the repair cost of each broken endpoint, already-working
    elements cost (almost) nothing.  Used as a strong incumbent for OPT
    on the connectivity-only scalability scenario (Fig. 7) and as an
    ablation baseline. *)

val forest :
  Graph.t ->
  weight:(Graph.edge_id -> float) ->
  pairs:(Graph.vertex * Graph.vertex) list ->
  Graph.edge_id list
(** [forest g ~weight ~pairs] returns an edge set connecting every pair,
    with total weight at most twice the optimum.  Pairs whose endpoints
    are disconnected in [g] are ignored.  Weights must be
    non-negative. *)

val recovery :
  Netrec_core.Instance.t -> Netrec_core.Instance.solution
(** Build a repair set from the forest on the full supply graph (pairs =
    demand endpoints), then drop redundancies with the postpass.  The
    result guarantees connectivity, not capacity — on capacitated
    instances it may lose demand; on connectivity-only instances it is a
    2-approximation of MinR. *)
