(** Exact MinR for connectivity-only instances via optimal Steiner
    forests (Dreyfus–Wagner dynamic programming).

    The paper's scalability scenario (§VII-B, Fig. 7) uses instances that
    are "an instance of the Steiner Forest problem": complete
    destruction, unit repair costs, unit demands, and link capacities so
    large that capacity never binds.  There the optimal recovery is a
    vertex-disjoint family of Steiner trees, and with unit costs its
    total repair count is

    [min over partitions of the demand pairs of
       sum over groups (2 * steiner_tree_edges(group) + 1)]

    because a tree with [E] edges repairs [E] edges and [E + 1] vertices.
    Steiner-tree edge counts for every terminal subset come from one
    Dreyfus–Wagner run ([O(3^k n + 2^k n^2)] for [k] terminals), and the
    outer minimization enumerates set partitions (pairs sharing an
    endpoint are pre-merged, preserving component disjointness).

    This gives the true OPT for Fig. 7 where the MILP would need tens of
    hours — matching how the paper describes the same instances. *)

val steiner_tree_hops : Graph.t -> terminals:Graph.vertex list -> int option
(** Minimum number of edges of a connected subgraph spanning the
    terminals ([Some 0] for fewer than two distinct terminals; [None]
    when they are not mutually connected).  Practical up to ~16
    terminals. *)

val optimal_total_repairs :
  Graph.t -> pairs:(Graph.vertex * Graph.vertex) list -> int option
(** Exact MinR repair count for a connectivity-only complete-destruction
    unit-cost instance with the given demand pairs.  [None] when some
    pair is disconnected or there are more than ~8 pairs (the partition
    enumeration would explode). *)
