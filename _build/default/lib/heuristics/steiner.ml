module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
module Routing = Netrec_flow.Routing
open Netrec_core

(* ---- union-find ---- *)

type uf = { parent : int array; rank : int array }

let uf_create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec uf_find uf x =
  if uf.parent.(x) = x then x
  else begin
    let root = uf_find uf uf.parent.(x) in
    uf.parent.(x) <- root;
    root
  end

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then
    if uf.rank.(ra) < uf.rank.(rb) then uf.parent.(ra) <- rb
    else if uf.rank.(ra) > uf.rank.(rb) then uf.parent.(rb) <- ra
    else begin
      uf.parent.(rb) <- ra;
      uf.rank.(ra) <- uf.rank.(ra) + 1
    end

(* ---- moat growing ---- *)

let forest g ~weight ~pairs =
  let n = Graph.nv g in
  let m = Graph.ne g in
  (* Only pairs connected in g can ever be joined. *)
  let pairs =
    List.filter (fun (s, t) -> s <> t && Traverse.reachable g s t) pairs
  in
  if pairs = [] then []
  else begin
    let uf = uf_create n in
    let slack = Array.init m (fun e -> weight e) in
    let chosen = ref [] in
    (* Active components: roots separating some pair. *)
    let active_roots () =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (s, t) ->
          let rs = uf_find uf s and rt = uf_find uf t in
          if rs <> rt then begin
            Hashtbl.replace tbl rs ();
            Hashtbl.replace tbl rt ()
          end)
        pairs;
      tbl
    in
    let rec grow () =
      let active = active_roots () in
      if Hashtbl.length active > 0 then begin
        (* Minimum time until some cross-component edge goes tight. *)
        let best_e = ref (-1) in
        let best_dt = ref infinity in
        for e = 0 to m - 1 do
          let u, v = Graph.endpoints g e in
          let ru = uf_find uf u and rv = uf_find uf v in
          if ru <> rv then begin
            let rate =
              (if Hashtbl.mem active ru then 1 else 0)
              + if Hashtbl.mem active rv then 1 else 0
            in
            if rate > 0 then begin
              let dt = slack.(e) /. float_of_int rate in
              if dt < !best_dt then begin
                best_dt := dt;
                best_e := e
              end
            end
          end
        done;
        if !best_e >= 0 then begin
          let dt = !best_dt in
          for e = 0 to m - 1 do
            let u, v = Graph.endpoints g e in
            let ru = uf_find uf u and rv = uf_find uf v in
            if ru <> rv then begin
              let rate =
                (if Hashtbl.mem active ru then 1 else 0)
                + if Hashtbl.mem active rv then 1 else 0
              in
              if rate > 0 then
                slack.(e) <-
                  Float.max 0.0 (slack.(e) -. (float_of_int rate *. dt))
            end
          done;
          let u, v = Graph.endpoints g !best_e in
          uf_union uf u v;
          chosen := !best_e :: !chosen;
          grow ()
        end
        (* No candidate edge: remaining pairs are unreachable; stop. *)
      end
    in
    grow ();
    (* Reverse delete: drop edges (most recent first) whose removal keeps
       every pair connected within the forest. *)
    let in_forest = Array.make m false in
    List.iter (fun e -> in_forest.(e) <- true) !chosen;
    let connected_within () =
      let edge_ok e = in_forest.(e) in
      List.for_all (fun (s, t) -> Traverse.reachable ~edge_ok g s t) pairs
    in
    List.iter
      (fun e ->
        in_forest.(e) <- false;
        if not (connected_within ()) then in_forest.(e) <- true)
      !chosen;
    List.filter (fun e -> in_forest.(e)) (List.init m (fun e -> e))
  end

let recovery inst =
  let g = inst.Instance.graph in
  let failure = inst.Instance.failure in
  let eps = 1e-4 in
  (* Repair-cost weights: broken elements cost their repair (vertex costs
     split between incident edges); working elements cost a whisper so
     shorter detours win ties. *)
  let weight e =
    let u, v = Graph.endpoints g e in
    let ke =
      if Failure.edge_broken failure e then inst.Instance.edge_cost.(e)
      else 0.0
    in
    let kv w =
      if Failure.vertex_broken failure w then
        inst.Instance.vertex_cost.(w) /. 2.0
      else 0.0
    in
    eps +. ke +. kv u +. kv v
  in
  let pairs =
    List.map
      (fun d -> (d.Commodity.src, d.Commodity.dst))
      inst.Instance.demands
  in
  let chosen = forest g ~weight ~pairs in
  let used_v = Array.make (Graph.nv g) false in
  List.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      used_v.(u) <- true;
      used_v.(v) <- true)
    chosen;
  (* Demand endpoints must work even when isolated. *)
  List.iter
    (fun (s, t) ->
      used_v.(s) <- true;
      used_v.(t) <- true)
    pairs;
  let repaired_vertices =
    List.filter
      (fun v -> used_v.(v) && Failure.vertex_broken failure v)
      (Graph.vertices g)
  in
  let repaired_edges =
    List.filter (Failure.edge_broken failure) chosen
  in
  let sol =
    { Instance.repaired_vertices; repaired_edges; routing = Routing.empty }
  in
  Postpass.prune inst sol
