(** Knapsack-style greedy heuristics (paper §VI-C).

    Both map every simple path between a demand pair to a knapsack object
    of weight [cost(p) / capacity(p)] — the repair cost of the path's
    broken edges over its bottleneck capacity — and repair paths in
    ascending weight order:

    - {b GRD-COM} (Greedy Commitment) immediately commits flow to each
      repaired path, updates residual capacities and demands, and
      opportunistically routes other demands over the repaired network;
      it repairs less but can strand demand behind bad routing choices.
    - {b GRD-NC} (Greedy No-Commitment) commits nothing and instead
      re-runs the routability test after each repair, stopping as soon as
      the whole demand is routable; it repairs more but never loses
      demand when the pre-failure network could carry it.

    Both need the exhaustive path set [P(H,G)] ({!Path_enum}) and are
    therefore only practical on small topologies, as in the paper. *)

open Netrec_core

val grd_com : ?max_per_pair:int -> Instance.t -> Instance.solution
(** Greedy Commitment.  The solution carries the routing the heuristic
    committed (possibly partial). *)

val grd_nc : ?max_per_pair:int -> Instance.t -> Instance.solution
(** Greedy No-Commitment.  The solution carries the routing found by the
    final (successful) routability test, or none when even repairing
    every enumerated path leaves demand unroutable. *)
