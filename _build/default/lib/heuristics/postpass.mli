(** Redundancy-elimination postpass.

    Given any feasible repair set, greedily drop repaired elements whose
    removal keeps the full demand routable (certified by the routability
    {!Netrec_flow.Oracle}), most expensive candidates first, until a
    fixpoint.  Used to strengthen MILP incumbents, to derive the MCB
    proxy from the multicommodity LP support (Fig. 3), and as the
    OPT-proxy component on instances too large for exact branch-and-bound
    (Fig. 9, see DESIGN.md §3). *)

open Netrec_core

val prune : ?max_rounds:int -> Instance.t -> Instance.solution -> Instance.solution
(** Drop redundant repairs.  The input solution must leave the demand
    routable (otherwise the solution is returned unchanged).  The result
    carries the routing of the last successful routability test. *)
