type t = { broken_vertices : bool array; broken_edges : bool array }

let none g =
  { broken_vertices = Array.make (Graph.nv g) false;
    broken_edges = Array.make (Graph.ne g) false }

let complete g =
  { broken_vertices = Array.make (Graph.nv g) true;
    broken_edges = Array.make (Graph.ne g) true }

let of_lists g ~vertices ~edges =
  let f = none g in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.nv g then invalid_arg "Failure.of_lists: vertex";
      f.broken_vertices.(v) <- true)
    vertices;
  List.iter
    (fun e ->
      if e < 0 || e >= Graph.ne g then invalid_arg "Failure.of_lists: edge";
      f.broken_edges.(e) <- true)
    edges;
  f

let copy f =
  { broken_vertices = Array.copy f.broken_vertices;
    broken_edges = Array.copy f.broken_edges }

let vertex_broken f v = f.broken_vertices.(v)
let edge_broken f e = f.broken_edges.(e)
let vertex_ok f v = not f.broken_vertices.(v)

let edge_usable f g e =
  (not f.broken_edges.(e))
  &&
  let u, v = Graph.endpoints g e in
  (not f.broken_vertices.(u)) && not f.broken_vertices.(v)

let count_true a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

let counts f = (count_true f.broken_vertices, count_true f.broken_edges)

let indices_of a =
  let acc = ref [] in
  for i = Array.length a - 1 downto 0 do
    if a.(i) then acc := i :: !acc
  done;
  !acc

let broken_vertex_list f = indices_of f.broken_vertices
let broken_edge_list f = indices_of f.broken_edges
