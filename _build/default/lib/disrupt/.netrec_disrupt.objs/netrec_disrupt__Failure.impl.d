lib/disrupt/failure.ml: Array Graph List
