lib/disrupt/failure.mli: Graph
