lib/disrupt/models.mli: Failure Graph Netrec_util
