lib/disrupt/models.ml: Array Failure Graph List Netrec_util
