(** Failure states: which vertices and edges of a supply graph are broken.

    This is the paper's pair [(VB, EB)] (§III).  Values are plain boolean
    arrays indexed by vertex/edge id; they are the mutable per-instance
    state that graph algorithms consume through [vertex_ok]/[edge_ok]
    predicates. *)

type t = {
  broken_vertices : bool array;  (** length [Graph.nv] *)
  broken_edges : bool array;  (** length [Graph.ne] *)
}

val none : Graph.t -> t
(** Nothing broken. *)

val complete : Graph.t -> t
(** Everything broken — the paper's "complete destruction of the supply
    graph" setting of §VII-A1/2 and §VII-B. *)

val of_lists : Graph.t -> vertices:Graph.vertex list -> edges:Graph.edge_id list -> t
(** Break exactly the listed elements.
    @raise Invalid_argument on out-of-range ids. *)

val copy : t -> t
(** Independent copy (algorithms mutate their own instance state). *)

val vertex_broken : t -> Graph.vertex -> bool
(** Whether a vertex is broken. *)

val edge_broken : t -> Graph.edge_id -> bool
(** Whether an edge is broken. *)

val vertex_ok : t -> Graph.vertex -> bool
(** Complement of {!vertex_broken} — pass directly to graph algorithms. *)

val edge_usable : t -> Graph.t -> Graph.edge_id -> bool
(** An edge is usable when neither it nor its endpoints are broken. *)

val counts : t -> int * int
(** [(broken vertex count, broken edge count)] — the "ALL" series of the
    figures. *)

val broken_vertex_list : t -> Graph.vertex list
(** Broken vertices in increasing order. *)

val broken_edge_list : t -> Graph.edge_id list
(** Broken edges in increasing order. *)
