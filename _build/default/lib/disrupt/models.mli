(** Stochastic disruption models.

    The paper evaluates (i) complete destruction and (ii) geographically
    correlated failures drawn from a bivariate Gaussian around an
    epicenter (§VII-A3): components closer to the epicenter fail with
    higher probability; growing the variance both widens and — with the
    paper's rescaling — intensifies the disruption. *)

val barycenter : Graph.t -> float * float
(** Average of the vertex coordinates.  @raise Invalid_argument when the
    graph has no coordinates or no vertices. *)

val gaussian :
  rng:Netrec_util.Rng.t ->
  ?epicenter:float * float ->
  variance:float ->
  Graph.t ->
  Failure.t
(** Geographically correlated failure: an element at squared distance
    [r2] from the epicenter (default {!barycenter}) fails with
    probability [exp (-r2 / (2 variance))] — 1 at the epicenter, decaying
    with distance, so larger variance destroys a wider area.  Edges are
    sampled at their midpoint, independently of their endpoints.
    @raise Invalid_argument when the graph lacks coordinates. *)

val uniform :
  rng:Netrec_util.Rng.t -> p_vertex:float -> p_edge:float -> Graph.t -> Failure.t
(** Independent uniform failures (not in the paper's evaluation; used by
    tests and as an ablation). *)

val expected_gaussian_failures : variance:float -> Graph.t -> float
(** Expected number of failed elements under {!gaussian} — handy to
    calibrate variance sweeps. *)
