module Rng = Netrec_util.Rng

let coords_exn g v =
  match Graph.coord g v with
  | Some c -> c
  | None -> invalid_arg "Disrupt: graph has no coordinates"

let barycenter g =
  let n = Graph.nv g in
  if n = 0 then invalid_arg "Disrupt.barycenter: empty graph";
  let sx = ref 0.0 and sy = ref 0.0 in
  List.iter
    (fun v ->
      let x, y = coords_exn g v in
      sx := !sx +. x;
      sy := !sy +. y)
    (Graph.vertices g);
  (!sx /. float_of_int n, !sy /. float_of_int n)

let fail_probability ~epicenter ~variance (x, y) =
  let ex, ey = epicenter in
  let dx = x -. ex and dy = y -. ey in
  let r2 = (dx *. dx) +. (dy *. dy) in
  if variance <= 0.0 then (if r2 = 0.0 then 1.0 else 0.0)
  else exp (-.r2 /. (2.0 *. variance))

let midpoint g e =
  let u, v = Graph.endpoints g e in
  let xu, yu = coords_exn g u and xv, yv = coords_exn g v in
  ((xu +. xv) /. 2.0, (yu +. yv) /. 2.0)

let gaussian ~rng ?epicenter ~variance g =
  let epicenter =
    match epicenter with Some e -> e | None -> barycenter g
  in
  let f = Failure.none g in
  List.iter
    (fun v ->
      let p = fail_probability ~epicenter ~variance (coords_exn g v) in
      if Rng.bernoulli rng p then f.Failure.broken_vertices.(v) <- true)
    (Graph.vertices g);
  Graph.fold_edges
    (fun e () ->
      let p = fail_probability ~epicenter ~variance (midpoint g e.Graph.id) in
      if Rng.bernoulli rng p then f.Failure.broken_edges.(e.Graph.id) <- true)
    g ();
  f

let uniform ~rng ~p_vertex ~p_edge g =
  let f = Failure.none g in
  List.iter
    (fun v ->
      if Rng.bernoulli rng p_vertex then f.Failure.broken_vertices.(v) <- true)
    (Graph.vertices g);
  Graph.fold_edges
    (fun e () ->
      if Rng.bernoulli rng p_edge then f.Failure.broken_edges.(e.Graph.id) <- true)
    g ();
  f

let expected_gaussian_failures ~variance g =
  let epicenter = barycenter g in
  let vertex_sum =
    List.fold_left
      (fun acc v ->
        acc +. fail_probability ~epicenter ~variance (coords_exn g v))
      0.0 (Graph.vertices g)
  in
  Graph.fold_edges
    (fun e acc ->
      acc +. fail_probability ~epicenter ~variance (midpoint g e.Graph.id))
    g vertex_sum
