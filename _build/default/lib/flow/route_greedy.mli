(** Constructive sequential router.

    Routes demands one at a time over residual capacities using successive
    shortest paths, trying a small portfolio of demand orders and edge
    metrics.  A full success is a {e certificate} of routability (the
    routing is explicit and capacity-feasible); a failure is inconclusive
    — sequential routing is not complete for multicommodity flow — so the
    {!Oracle} escalates to an LP in that case.

    This is the fast path of the routability test that ISP runs at every
    iteration, and the constructive "no demand loss" witness of the
    experiments. *)

val route_all :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  Commodity.t list ->
  Routing.t option
(** All-or-nothing: [Some routing] iff some portfolio attempt routes every
    demand completely.  The routing respects [cap] exactly. *)

val route_max :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  Commodity.t list ->
  Routing.t
(** Best effort: the portfolio attempt that routes the largest total
    amount (possibly partial).  Lower-bounds the maximum satisfiable
    demand; used for the demand-loss metric on instances too large for
    the exact LP. *)
