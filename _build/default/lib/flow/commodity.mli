(** Demand flows (the commodities of the multicommodity problem).

    The demand graph [H = (VH, EH)] of the paper is represented as a list
    of demands; each demand is one edge of [EH] with its flow requirement
    [d_h].  Lists rather than sets: ISP's split action creates several
    demands that share endpoints, and order carries no meaning. *)

type t = {
  src : Graph.vertex;
  dst : Graph.vertex;
  amount : float;  (** strictly positive for live demands *)
}
(** One demand pair [(s_h, t_h)] with flow [d_h]. *)

val make : src:Graph.vertex -> dst:Graph.vertex -> amount:float -> t
(** @raise Invalid_argument when [src = dst] or [amount < 0]. *)

val total : t list -> float
(** Sum of demand amounts. *)

val endpoints : t list -> Graph.vertex list
(** Sorted distinct endpoint vertices (the paper's [VH]). *)

val is_endpoint : t list -> Graph.vertex -> bool
(** Whether a vertex is an endpoint of any demand in the list. *)

val normalize : t list -> t list
(** Merge demands sharing the same unordered endpoint pair and drop
    (near-)zero amounts.  Used before routability tests to keep the
    commodity count — and thus LP size — small. *)

val pp : Format.formatter -> t -> unit
(** Human-readable "s->t:amount". *)
