(** Explicit routings: which paths carry how much of each demand.

    ISP must output a routing together with the repair list (paper §I:
    "the algorithm also produces a routing solution that guarantees that
    the demand flows are actually accommodated"); this module is that
    artifact plus its validity checker. *)

type assignment = {
  demand : Commodity.t;
  paths : (Paths.path * float) list;
      (** paths from [demand.src] to [demand.dst] with carried amounts *)
}

type t = assignment list

val empty : t
(** No demands routed. *)

val routed_amount : assignment -> float
(** Total amount carried for one demand. *)

val total_routed : t -> float
(** Sum over all assignments. *)

val edge_load : Graph.t -> t -> float array
(** Total flow (all demands, both directions summed — the paper's capacity
    model) per edge id. *)

val satisfies : ?eps:float -> Graph.t -> cap:(Graph.edge_id -> float) -> t -> bool
(** Whether every edge load respects [cap] and every assignment's paths
    really join its demand endpoints. *)

val satisfaction : demands:Commodity.t list -> t -> float
(** Fraction (in [0,1]) of the total demand that the routing carries —
    the "percentage of satisfied demand" series of Figs. 4(d), 5(b), 6(b)
    and 9(b), as a ratio.  1 when [demands] is empty. *)

val merge : t -> t -> t
(** Concatenate two routings (used when pruning routes part of the demand
    and the final test routes the rest). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
