(** Garg–Könemann fully-polynomial approximation for maximum concurrent
    multicommodity flow (Garg & Könemann, SIAM J. Comput. 2007 — the
    paper's reference [17]), with Fleischer-style phases.

    Used as the large-instance fallback of the routability {!Oracle}: the
    exact LP of {!Mcf_lp} does not scale past a few thousand flow
    variables, while GK only needs repeated Dijkstra runs.

    The returned ratio [lambda] is {e certified feasible}: the flow
    scaled by the observed congestion satisfies every capacity, so
    [lambda >= 1] proves routability constructively.  Conversely the GK
    guarantee [lambda >= (1 - 3 eps) lambda*] makes
    [lambda < 1 - 3 eps] a proof of unroutability; ratios in between are
    inconclusive. *)

type result = {
  lambda : float;
      (** certified concurrent ratio: every demand can be served at
          [lambda] times its amount simultaneously *)
  routing : Routing.t;
      (** explicit feasible routing serving [min 1 lambda] of each
          demand *)
}

val max_concurrent :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  ?eps:float ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  Commodity.t list ->
  result
(** Approximate the maximum concurrent flow.  [eps] (default 0.1) trades
    accuracy for running time (cost grows as [1/eps^2]).  Demands with
    amount 0 are ignored; a demand disconnected from its endpoint makes
    [lambda = 0]. *)

val max_sum :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  ?eps:float ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  Commodity.t list ->
  Routing.t
(** Approximate the {e maximum total} multicommodity flow with
    per-demand caps [d_h] (each demand served at most its amount) — the
    demand-loss measurement problem.  The per-demand cap is realised by
    the classic virtual-source-edge trick folded into the algorithm: a
    commodity's length includes a private "access" length that grows
    with its own routed amount, so saturated demands stop attracting
    flow.  The returned routing is certified capacity-feasible (scaled
    by the observed congestion) and serves at least [(1 - 3 eps)] of
    the optimum. *)
