lib/flow/gk.mli: Commodity Graph Routing
