lib/flow/commodity.mli: Format Graph
