lib/flow/route_greedy.ml: Array Commodity Dijkstra Float Graph List Option Routing
