lib/flow/commodity.ml: Format Graph Hashtbl List Option
