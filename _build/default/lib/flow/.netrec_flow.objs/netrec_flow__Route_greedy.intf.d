lib/flow/route_greedy.mli: Commodity Graph Routing
