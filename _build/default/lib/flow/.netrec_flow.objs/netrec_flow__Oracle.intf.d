lib/flow/oracle.mli: Commodity Graph Routing
