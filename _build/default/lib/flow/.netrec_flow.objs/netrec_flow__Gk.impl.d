lib/flow/gk.ml: Array Commodity Dijkstra Float Graph List Routing
