lib/flow/routing.ml: Array Commodity Float Format Graph List Paths
