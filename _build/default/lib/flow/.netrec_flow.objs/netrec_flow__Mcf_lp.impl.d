lib/flow/mcf_lp.ml: Array Commodity Float Graph Hashtbl List Maxflow Netrec_lp Routing
