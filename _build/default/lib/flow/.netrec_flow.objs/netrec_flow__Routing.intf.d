lib/flow/routing.mli: Commodity Format Graph Paths
