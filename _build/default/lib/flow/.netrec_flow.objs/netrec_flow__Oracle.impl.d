lib/flow/oracle.ml: Array Commodity Gk Hashtbl List Mcf_lp Option Route_greedy Routing Traverse
