lib/flow/mcf_lp.mli: Commodity Graph Routing
