lib/topo/bell_canada.mli: Graph
