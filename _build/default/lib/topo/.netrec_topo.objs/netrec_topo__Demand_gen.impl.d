lib/topo/demand_gen.ml: Array Graph Hashtbl List Metrics Netrec_flow Netrec_util Traverse
