lib/topo/caida.mli: Graph
