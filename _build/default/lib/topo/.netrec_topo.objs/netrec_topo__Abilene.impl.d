lib/topo/abilene.ml: Array Graph List
