lib/topo/abilene.mli: Graph
