lib/topo/demand_gen.mli: Graph Netrec_flow Netrec_util
