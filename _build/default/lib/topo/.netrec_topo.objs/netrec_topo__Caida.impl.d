lib/topo/caida.ml: Generate Graph Netrec_util
