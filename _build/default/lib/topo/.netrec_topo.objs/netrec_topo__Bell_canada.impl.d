lib/topo/bell_canada.ml: Array Graph List
