(** The Bell-Canada-like evaluation topology (48 nodes, 64 edges).

    The paper's first scenario uses the Bell Canada map from the Internet
    Topology Zoo with hand-altered capacities: two backbones of capacity
    30 and 50, every other link 20, unit repair costs (§VII-A).  The Zoo
    GraphML is not redistributable inside this sealed build, so this
    module embeds a structurally equivalent stand-in: same node and edge
    counts, a west-to-east geographic embedding over Canadian cities
    (coordinates drive the Gaussian failure model), a planar
    backbone-plus-spur shape, and exactly the paper's capacity plan.
    See DESIGN.md §3 for the substitution rationale. *)

val graph : unit -> Graph.t
(** Build the topology (fresh value each call; the graph is immutable so
    sharing would also be fine).  48 vertices, 64 edges, connected:
    7 backbone edges at capacity 50, 9 at capacity 30, 48 access edges at
    capacity 20. *)

val backbone50 : (int * int) list
(** Vertex pairs of the capacity-50 backbone, west to east. *)

val backbone30 : (int * int) list
(** Vertex pairs of the capacity-30 backbone. *)
