(** The CAIDA-AS28717-like large evaluation topology.

    The paper's third scenario uses the giant connected component of the
    CAIDA ITDK AS28717 router-level map: 825 nodes and 1018 edges
    (§VII-C, Fig. 8).  The ITDK data set is not available in this sealed
    build, so this module generates a synthetic stand-in with exactly the
    same size and a matching heavy-tailed degree profile: a
    preferential-attachment tree plus degree-proportional extra edges
    (see DESIGN.md §3). *)

val nodes : int
(** 825, as in the paper. *)

val edges : int
(** 1018, as in the paper. *)

val graph : ?seed:int -> ?capacity:float -> unit -> Graph.t
(** Generate the topology.  [seed] (default 28717) fixes the structure;
    [capacity] (default 30) is the uniform link capacity — commensurate
    with the paper's 22-units-per-pair demands so that shortest-path
    repairs can saturate (the regime where SRT shows demand loss in
    Fig. 9(b)). *)
