(* 48 cities with a rough west-to-east planar embedding (x grows eastward,
   y northward; units are arbitrary map units used only for relative
   distances in the Gaussian failure model). *)
let cities =
  [| ("Victoria", (2.0, 4.0));         (* 0 *)
     ("Vancouver", (3.0, 6.0));        (* 1 *)
     ("Whistler", (4.0, 8.0));         (* 2 *)
     ("Kamloops", (8.0, 7.0));         (* 3 *)
     ("Kelowna", (9.0, 5.0));          (* 4 *)
     ("PrinceGeorge", (8.0, 12.0));    (* 5 *)
     ("Calgary", (16.0, 6.0));         (* 6 *)
     ("Edmonton", (15.0, 10.0));       (* 7 *)
     ("RedDeer", (15.5, 8.0));         (* 8 *)
     ("Lethbridge", (17.0, 4.0));      (* 9 *)
     ("Saskatoon", (24.0, 9.0));       (* 10 *)
     ("Regina", (25.0, 6.0));          (* 11 *)
     ("PrinceAlbert", (24.0, 12.0));   (* 12 *)
     ("Winnipeg", (33.0, 5.0));        (* 13 *)
     ("Brandon", (31.0, 5.5));         (* 14 *)
     ("ThunderBay", (40.0, 7.0));      (* 15 *)
     ("SaultSteMarie", (46.0, 6.0));   (* 16 *)
     ("Sudbury", (50.0, 7.0));         (* 17 *)
     ("NorthBay", (52.0, 8.0));        (* 18 *)
     ("Timmins", (50.0, 11.0));        (* 19 *)
     ("Toronto", (54.0, 3.0));         (* 20 *)
     ("Hamilton", (53.0, 2.5));        (* 21 *)
     ("London", (51.0, 2.0));          (* 22 *)
     ("Windsor", (48.0, 1.0));         (* 23 *)
     ("Kitchener", (52.5, 2.8));       (* 24 *)
     ("NiagaraFalls", (54.0, 2.0));    (* 25 *)
     ("Kingston", (57.0, 4.5));        (* 26 *)
     ("Ottawa", (58.0, 6.0));          (* 27 *)
     ("Gatineau", (57.8, 6.3));        (* 28 *)
     ("Montreal", (61.0, 6.0));        (* 29 *)
     ("Laval", (60.8, 6.4));           (* 30 *)
     ("TroisRivieres", (63.0, 7.5));   (* 31 *)
     ("Sherbrooke", (63.0, 5.0));      (* 32 *)
     ("QuebecCity", (65.0, 8.0));      (* 33 *)
     ("Chicoutimi", (65.0, 11.0));     (* 34 *)
     ("Rimouski", (68.0, 10.0));       (* 35 *)
     ("Fredericton", (72.0, 6.0));     (* 36 *)
     ("SaintJohn", (73.0, 5.0));       (* 37 *)
     ("Moncton", (75.0, 6.5));         (* 38 *)
     ("Halifax", (78.0, 4.0));         (* 39 *)
     ("Sydney", (82.0, 6.0));          (* 40 *)
     ("Charlottetown", (77.0, 7.0));   (* 41 *)
     ("StJohns", (90.0, 8.0));         (* 42 *)
     ("Barrie", (53.5, 4.0));          (* 43 *)
     ("Oshawa", (55.0, 3.5));          (* 44 *)
     ("Peterborough", (56.0, 4.2));    (* 45 *)
     ("Sarnia", (49.5, 1.8));          (* 46 *)
     ("Seattle", (3.0, 3.0)) |]        (* 47 *)

(* The main southern backbone, capacity 50, spanning the full west-east
   extent: Vancouver - Calgary - Regina - Winnipeg - Toronto - Ottawa -
   Montreal - Quebec City - Fredericton - Halifax.  Together with the
   northern backbone below it gives every west-east cut at least 80 units
   of capacity, which is what lets the paper push 4 pairs x 18 units (or
   7 pairs x 10) through the network. *)
let backbone50 =
  [ (1, 6); (6, 11); (11, 13); (13, 20); (20, 27); (27, 29); (29, 33);
    (33, 36); (36, 39) ]

(* The northern backbone, capacity 30: through the interior (Kamloops,
   Edmonton, Saskatoon), along the lakes (Thunder Bay, Sault Ste Marie,
   Sudbury, North Bay), then the St-Lawrence north shore (Gatineau,
   Laval, Trois-Rivieres, Quebec City, Rimouski) out to St John's. *)
let backbone30 =
  [ (1, 3); (3, 7); (7, 10); (10, 13); (13, 15); (15, 16); (16, 17);
    (17, 18); (18, 28); (28, 30); (30, 31); (31, 33); (33, 35); (35, 38);
    (38, 40); (40, 42) ]

(* Access and regional links, capacity 20. *)
let access =
  [ (0, 1); (1, 47); (1, 2);
    (3, 4); (4, 6); (3, 5); (5, 7); (6, 8); (7, 8); (6, 9); (9, 11);
    (10, 11); (10, 12); (11, 14); (13, 14);
    (19, 17);
    (20, 21); (21, 25); (21, 22); (22, 23); (22, 46); (20, 24); (20, 43);
    (43, 18); (20, 44); (45, 26); (26, 27);
    (27, 28); (28, 29); (29, 30); (29, 32); (32, 33); (33, 34); (34, 35);
    (36, 37); (37, 38); (38, 41); (41, 40); (39, 40) ]

let graph () =
  let names = Array.map fst cities in
  (* Compress the west-east axis to a ~30x12 map so the paper's Gaussian
     variance sweep (10..150, §VII-A3) spans light-to-near-total
     destruction on this embedding too. *)
  let coords = Array.map (fun (_, (x, y)) -> (x /. 3.0, y)) cities in
  let with_cap c = List.map (fun (u, v) -> (u, v, c)) in
  let edges =
    with_cap 50.0 backbone50 @ with_cap 30.0 backbone30 @ with_cap 20.0 access
  in
  Graph.make ~names ~coords ~n:(Array.length cities) ~edges ()
