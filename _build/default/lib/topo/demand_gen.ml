module Rng = Netrec_util.Rng
module Commodity = Netrec_flow.Commodity

(* All unordered pairs at hop distance >= threshold, with their distance. *)
let eligible_pairs g =
  let n = Graph.nv g in
  if n < 2 then invalid_arg "Demand_gen: graph too small";
  let diameter = Metrics.hop_diameter g in
  let threshold = (diameter + 1) / 2 in
  let pairs = ref [] in
  for u = 0 to n - 1 do
    let dist = Traverse.bfs_dist g u in
    for v = u + 1 to n - 1 do
      if dist.(v) < max_int then pairs := ((u, v), dist.(v)) :: !pairs
    done
  done;
  let all = !pairs in
  let far = List.filter (fun (_, d) -> d >= threshold) all in
  if far <> [] then far
  else
    (* Degenerate graphs (e.g. cliques): fall back to the farthest pairs. *)
    let dmax = List.fold_left (fun acc (_, d) -> max acc d) 0 all in
    List.filter (fun (_, d) -> d = dmax) all

let draw ~rng ~count ~amount ~distinct g =
  let candidates = Array.of_list (eligible_pairs g) in
  Rng.shuffle rng candidates;
  let used = Hashtbl.create 16 in
  let taken = ref [] in
  let ntaken = ref 0 in
  Array.iter
    (fun ((u, v), _) ->
      if !ntaken < count then begin
        let clash = distinct && (Hashtbl.mem used u || Hashtbl.mem used v) in
        if not clash then begin
          Hashtbl.replace used u ();
          Hashtbl.replace used v ();
          taken := Commodity.make ~src:u ~dst:v ~amount :: !taken;
          incr ntaken
        end
      end)
    candidates;
  List.rev !taken

let far_pairs ~rng ~count ~amount g = draw ~rng ~count ~amount ~distinct:false g

let distinct_endpoint_pairs ~rng ~count ~amount g =
  draw ~rng ~count ~amount ~distinct:true g
