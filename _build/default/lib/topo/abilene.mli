(** The Abilene (Internet2) backbone: 11 nodes, 14 links.

    Not part of the paper's evaluation — included as a small, well-known
    embedded topology for examples, tests and quick CLI experiments
    (every link of the real network is present; capacities are
    normalized to a uniform 10 units). *)

val graph : unit -> Graph.t
(** Build the topology (11 vertices, 14 edges, connected, embedded on a
    rough US map). *)
