let cities =
  [| ("Seattle", (1.0, 9.0));        (* 0 *)
     ("Sunnyvale", (0.5, 5.0));      (* 1 *)
     ("LosAngeles", (1.5, 3.0));     (* 2 *)
     ("Denver", (5.0, 6.0));         (* 3 *)
     ("KansasCity", (7.5, 5.5));     (* 4 *)
     ("Houston", (7.0, 1.5));        (* 5 *)
     ("Chicago", (9.5, 7.0));        (* 6 *)
     ("Indianapolis", (10.0, 6.0));  (* 7 *)
     ("Atlanta", (10.5, 3.0));       (* 8 *)
     ("WashingtonDC", (13.0, 5.5));  (* 9 *)
     ("NewYork", (13.5, 7.0)) |]     (* 10 *)

let links =
  [ (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 7); (5, 8);
    (7, 8); (6, 7); (6, 10); (8, 9); (9, 10) ]

let graph () =
  let names = Array.map fst cities in
  let coords = Array.map snd cities in
  let edges = List.map (fun (u, v) -> (u, v, 10.0)) links in
  Graph.make ~names ~coords ~n:(Array.length cities) ~edges ()
