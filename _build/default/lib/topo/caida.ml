module Rng = Netrec_util.Rng

let nodes = 825
let edges = 1018

let graph ?(seed = 28717) ?(capacity = 30.0) () =
  let rng = Rng.create seed in
  let g =
    Generate.preferential_attachment ~rng ~n:nodes
      ~extra_edges:(edges - (nodes - 1))
      ~capacity
  in
  assert (Graph.nv g = nodes);
  assert (Graph.ne g = edges);
  g
