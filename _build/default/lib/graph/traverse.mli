(** Breadth-first traversal, reachability and connected components with
    vertex/edge availability predicates.

    The predicates express the "working subgraph" of a partially destroyed
    network: algorithms see only vertices with [vertex_ok] and edges with
    [edge_ok] whose two endpoints are also ok.  Both default to accepting
    everything. *)

val bfs_dist :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  Graph.t ->
  Graph.vertex ->
  int array
(** Hop distance from the source to every vertex ([max_int] when
    unreachable, including the source itself when [vertex_ok src] fails). *)

val reachable :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  Graph.t ->
  Graph.vertex ->
  Graph.vertex ->
  bool
(** Whether a working path connects the two vertices. *)

val bfs_path :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  Graph.t ->
  Graph.vertex ->
  Graph.vertex ->
  Graph.edge_id list option
(** A minimum-hop working path as an edge sequence from source to target
    ([Some []] when source = target and the source is ok). *)

val components :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  Graph.t ->
  Graph.vertex list list
(** Connected components of the working subgraph (vertices failing
    [vertex_ok] appear in no component). *)

val giant_component :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  Graph.t ->
  Graph.vertex list
(** The largest component ([[]] for an empty working subgraph). *)

val is_connected : Graph.t -> bool
(** Whether the full graph is connected ([true] for graphs with at most one
    vertex). *)
