(** Single-commodity maximum flow (Dinic's algorithm) on the undirected
    supply graph.

    Used by ISP for the demand-selection rule of §IV-C (the maximum flow
    [f*(i,j)] between demand endpoints on the full residual graph) and by
    the pruning step (Thm. 3: the amount prunable over a bubble is the
    bubble's max flow capped by the demand).  Capacities default to the
    graph's nominal capacities; pass [cap] to use residual ones. *)

type result = {
  value : float;  (** value of the maximum flow *)
  edge_flow : float array;
      (** signed net flow per edge id: positive from [u] to [v] as stored in
          the graph's edge record *)
}

val max_flow :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  ?cap:(Graph.edge_id -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  result
(** Maximum [source]→[sink] flow over the admissible subgraph.  Returns a
    zero flow when source and sink coincide or are disconnected.
    @raise Invalid_argument on out-of-range vertices or negative capacity. *)

val max_flow_value :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  ?cap:(Graph.edge_id -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  float
(** Just the value of {!max_flow}. *)

val min_cut :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  ?cap:(Graph.edge_id -> float) ->
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  Graph.vertex list * Graph.edge_id list
(** The source side of a minimum cut and the saturated edges crossing it
    (by max-flow/min-cut duality their capacities sum to the flow value). *)

val decompose :
  Graph.t ->
  source:Graph.vertex ->
  sink:Graph.vertex ->
  result ->
  (Graph.edge_id list * float) list
(** Decompose a flow into at most [ne] source→sink paths with positive
    amounts (flow on cycles, if any, is dropped). *)
