type vertex = int
type edge_id = int

type edge = { id : edge_id; u : vertex; v : vertex; capacity : float }

type t = {
  nv : int;
  edge_arr : edge array;
  adj : (vertex * edge_id) list array;
  names : string array option;
  coords : (float * float) array option;
}

let make ?names ?coords ~n ~edges () =
  if n < 0 then invalid_arg "Graph.make: negative vertex count";
  (match names with
  | Some a when Array.length a <> n -> invalid_arg "Graph.make: names arity"
  | _ -> ());
  (match coords with
  | Some a when Array.length a <> n -> invalid_arg "Graph.make: coords arity"
  | _ -> ());
  let check_vertex w =
    if w < 0 || w >= n then invalid_arg "Graph.make: endpoint out of range"
  in
  let edge_arr =
    Array.of_list
      (List.mapi
         (fun id (u, v, capacity) ->
           check_vertex u;
           check_vertex v;
           if u = v then invalid_arg "Graph.make: self-loop";
           if capacity < 0.0 then invalid_arg "Graph.make: negative capacity";
           { id; u; v; capacity })
         edges)
  in
  let adj = Array.make n [] in
  (* Build adjacency in reverse so that each list ends up in edge-id order. *)
  for i = Array.length edge_arr - 1 downto 0 do
    let e = edge_arr.(i) in
    adj.(e.u) <- (e.v, e.id) :: adj.(e.u);
    adj.(e.v) <- (e.u, e.id) :: adj.(e.v)
  done;
  { nv = n; edge_arr; adj; names; coords }

let nv g = g.nv
let ne g = Array.length g.edge_arr

let edge g id =
  if id < 0 || id >= Array.length g.edge_arr then
    invalid_arg "Graph.edge: id out of range";
  g.edge_arr.(id)

let edges g = Array.to_list g.edge_arr
let capacity g id = (edge g id).capacity

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let other_end g id w =
  let e = edge g id in
  if e.u = w then e.v
  else if e.v = w then e.u
  else invalid_arg "Graph.other_end: vertex not an endpoint"

let incident g v =
  if v < 0 || v >= g.nv then invalid_arg "Graph.incident: vertex out of range";
  g.adj.(v)

let neighbors g v = List.map fst (incident g v)
let degree g v = List.length (incident g v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.nv - 1 do
    best := max !best (List.length g.adj.(v))
  done;
  !best

let find_edges g u v =
  List.filter_map (fun (w, e) -> if w = v then Some e else None) (incident g u)

let find_edge g u v =
  match find_edges g u v with [] -> None | e :: _ -> Some e

let name g v =
  match g.names with
  | Some a -> a.(v)
  | None -> "v" ^ string_of_int v

let coord g v =
  match g.coords with Some a -> Some a.(v) | None -> None

let has_coords g = g.coords <> None

let vertices g = List.init g.nv (fun i -> i)

let fold_edges f g init = Array.fold_left (fun acc e -> f e acc) init g.edge_arr

let total_capacity g = fold_edges (fun e acc -> acc +. e.capacity) g 0.0

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph supply {\n";
  for v = 0 to g.nv - 1 do
    let pos =
      match coord g v with
      | Some (x, y) -> Printf.sprintf " pos=\"%g,%g!\"" x y
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (name g v) pos)
  done;
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%g\"];\n" e.u e.v e.capacity))
    g.edge_arr;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_edge_list g =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%d %d %g\n" e.u e.v e.capacity))
    g.edge_arr;
  Buffer.contents buf

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let parse line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ u; v; c ] -> (
        try Some (int_of_string u, int_of_string v, float_of_string c)
        with _ -> failwith ("Graph.of_edge_list: bad line: " ^ line))
      | _ -> failwith ("Graph.of_edge_list: bad line: " ^ line)
  in
  let parsed = List.filter_map parse lines in
  let n =
    List.fold_left (fun acc (u, v, _) -> max acc (max u v + 1)) 0 parsed
  in
  make ~n ~edges:parsed ()
