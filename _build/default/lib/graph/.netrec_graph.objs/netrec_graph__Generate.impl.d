lib/graph/generate.ml: Array Float Graph Hashtbl List Netrec_util Option Traverse
