lib/graph/traverse.mli: Graph
