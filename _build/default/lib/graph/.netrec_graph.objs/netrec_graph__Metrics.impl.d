lib/graph/metrics.ml: Array Graph Hashtbl List Option Printf Queue Traverse
