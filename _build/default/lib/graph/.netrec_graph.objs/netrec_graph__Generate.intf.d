lib/graph/generate.mli: Graph Netrec_util
