lib/graph/graph.mli:
