lib/graph/graph.ml: Array Buffer List Printf String
