lib/graph/maxflow.mli: Graph
