lib/graph/metrics.mli: Graph
