lib/graph/dijkstra.mli: Graph
