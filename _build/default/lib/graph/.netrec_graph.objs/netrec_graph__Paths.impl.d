lib/graph/paths.ml: Array Dijkstra Float Graph List
