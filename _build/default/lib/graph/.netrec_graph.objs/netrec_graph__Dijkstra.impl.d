lib/graph/dijkstra.ml: Array Graph List Netrec_util
