lib/graph/maxflow.ml: Array Float Graph List Queue
