lib/graph/traverse.ml: Array Graph List Queue
