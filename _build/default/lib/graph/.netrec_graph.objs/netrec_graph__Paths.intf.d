lib/graph/paths.mli: Graph
