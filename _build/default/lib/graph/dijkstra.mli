(** Single-source shortest paths with arbitrary non-negative edge lengths.

    The length is a function of the edge id, which lets callers plug in the
    dynamic repair-aware path metric of the paper (§IV-D):
    [l(e) = (const + ke + (kv_u + kv_v)/2) / c(e)], re-evaluated every
    iteration as repairs and prunes change costs and residual capacities. *)

val distances :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  length:(Graph.edge_id -> float) ->
  Graph.t ->
  Graph.vertex ->
  float array
(** Shortest-path length from the source to every vertex ([infinity] when
    unreachable).  @raise Invalid_argument on a negative edge length. *)

val shortest_path :
  ?vertex_ok:(Graph.vertex -> bool) ->
  ?edge_ok:(Graph.edge_id -> bool) ->
  length:(Graph.edge_id -> float) ->
  Graph.t ->
  Graph.vertex ->
  Graph.vertex ->
  Graph.edge_id list option
(** Shortest path between two vertices as an edge sequence (source to
    target; [Some []] when they coincide and are ok). *)
