lib/lp/milp.ml: Array Float List Lp
