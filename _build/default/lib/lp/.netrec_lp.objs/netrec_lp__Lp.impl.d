lib/lp/lp.ml: Array Float Hashtbl List Option Simplex
