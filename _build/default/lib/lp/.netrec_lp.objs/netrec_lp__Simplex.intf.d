lib/lp/simplex.mli:
