lib/lp/milp.mli: Lp
