lib/lp/lp.mli:
