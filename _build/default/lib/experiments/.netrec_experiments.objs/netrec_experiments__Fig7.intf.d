lib/experiments/fig7.mli: Netrec_util
