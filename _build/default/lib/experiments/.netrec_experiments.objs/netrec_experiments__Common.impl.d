lib/experiments/common.ml: Graph List Netrec_core Netrec_disrupt Netrec_flow Netrec_heuristics Netrec_topo Netrec_util Unix
