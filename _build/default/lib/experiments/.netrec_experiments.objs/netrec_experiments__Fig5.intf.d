lib/experiments/fig5.mli: Netrec_util
