lib/experiments/fig3.mli: Netrec_util
