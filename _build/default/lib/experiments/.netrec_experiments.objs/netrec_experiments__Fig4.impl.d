lib/experiments/fig4.ml: Common Hashtbl Netrec_core Netrec_disrupt Netrec_heuristics Netrec_topo Netrec_util Option Unix
