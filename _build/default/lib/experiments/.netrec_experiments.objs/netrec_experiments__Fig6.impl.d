lib/experiments/fig6.ml: Common Hashtbl List Netrec_core Netrec_disrupt Netrec_heuristics Netrec_topo Netrec_util Option Unix
