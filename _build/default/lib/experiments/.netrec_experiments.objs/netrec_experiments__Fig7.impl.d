lib/experiments/fig7.ml: Common Generate List Netrec_core Netrec_disrupt Netrec_flow Netrec_heuristics Netrec_util Printf Traverse Unix
