lib/experiments/fig5.ml: Common Float Hashtbl List Netrec_core Netrec_disrupt Netrec_heuristics Netrec_topo Netrec_util Option Unix
