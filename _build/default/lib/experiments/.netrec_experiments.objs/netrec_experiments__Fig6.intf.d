lib/experiments/fig6.mli: Netrec_util
