lib/experiments/fig4.mli: Netrec_util
