lib/experiments/ablation.mli: Netrec_util
