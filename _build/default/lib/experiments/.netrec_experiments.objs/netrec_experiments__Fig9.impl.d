lib/experiments/fig9.ml: Common List Netrec_core Netrec_disrupt Netrec_heuristics Netrec_topo Netrec_util
