lib/experiments/common.mli: Graph Netrec_core Netrec_disrupt Netrec_flow Netrec_util
