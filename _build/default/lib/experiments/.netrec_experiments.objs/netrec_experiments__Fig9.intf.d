lib/experiments/fig9.mli: Netrec_util
