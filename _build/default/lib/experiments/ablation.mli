(** Ablation studies for the design choices DESIGN.md calls out — beyond
    the paper's own figures.

    Three tables:

    + {b Length metric} — ISP with the paper's dynamic repair-aware
      metric (§IV-D) versus plain hop lengths, and with a single split
      candidate versus the default portfolio, on Bell-Canada complete
      destruction.  Quantifies the claim that the dynamic metric is what
      concentrates flows onto already-repaired components.
    + {b Progressive recovery} — the area under the satisfied-demand
      curve when ISP's repairs are executed in greedy marginal-gain
      order ({!Netrec_core.Schedule.greedy}) versus the arbitrary order
      the solver emits, connecting to the throughput-over-time objective
      of the paper's reference [32].
    + {b SRT vs SRT-R} — how much of SRT's demand loss disappears when
      the heuristic merely tracks residual capacities
      ({!Netrec_heuristics.Srt.solve_residual}), and what it pays in
      extra repairs. *)

val run : ?runs:int -> ?seed:int -> unit -> Netrec_util.Table.t list
(** Produce the ablation tables. *)
