lib/util/table.mli:
