lib/util/num.mli:
