lib/util/rng.mli:
