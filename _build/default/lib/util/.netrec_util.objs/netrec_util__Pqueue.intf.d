lib/util/pqueue.mli:
