lib/util/num.ml: Array Float List
