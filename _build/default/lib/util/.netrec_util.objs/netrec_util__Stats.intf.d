lib/util/stats.mli:
