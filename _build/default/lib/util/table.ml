type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_float_row ?(decimals = 2) t row =
  add_row t (List.map (fun v -> Printf.sprintf "%.*f" decimals v) row)

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let render_row row =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf "%*s" widths.(i) cell) row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" (t.title :: render_row t.columns :: sep :: body)

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()

let to_csv t =
  let escape cell =
    if String.contains cell ',' then "\"" ^ cell ^ "\"" else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (List.map line (t.columns :: List.rev t.rows))
