(** Plain-text table rendering for the experiment harness.

    The benchmark executable prints every reproduced figure as an aligned
    text table (one row per x-axis point, one column per series), matching
    the rows/series of the paper's plots. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with the given header. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have as many cells as there are columns. *)

val add_float_row : ?decimals:int -> t -> float list -> unit
(** Append a row of floats rendered with [decimals] (default 2) digits. *)

val render : t -> string
(** Render with aligned columns, a title line and a separator. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header row included) for machine reading. *)
