(** Floating-point tolerances and comparisons shared across the solvers.

    The LP simplex, the Garg–Könemann approximation and the flow-balance
    checks all compare floating-point quantities; this module centralises
    the tolerance discipline so the whole library agrees on what "equal"
    and "at least" mean numerically. *)

val eps : float
(** Default absolute tolerance (1e-7). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= eps * max 1 |a| |b|]. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b + eps] (tolerant less-or-equal). *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [a >= b - eps]. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [|x| <= eps]. *)

val clamp : float -> float -> float -> float
(** [clamp lo hi x] limits [x] to [\[lo, hi\]]. *)

val sum : float list -> float
(** Numerically ordinary left-to-right sum. *)

val fsum : float array -> float
(** Kahan-compensated sum of an array (stable for long accumulations). *)
