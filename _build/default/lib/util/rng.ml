type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift-multiply mixing of the advanced state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int as a
     non-negative number. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits mapped to [0,1), scaled. *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let gaussian2 t =
  let rec draw () =
    let u = (2.0 *. float t 1.0) -. 1.0 in
    let v = (2.0 *. float t 1.0) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then draw ()
    else
      let scale = sqrt (-2.0 *. log s /. s) in
      (u *. scale, v *. scale)
  in
  draw ()

let gaussian t = fst (gaussian2 t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)
