(** Small descriptive-statistics helpers used by the experiment harness to
    average series over repeated seeded runs. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val stddev : float list -> float
(** Population standard deviation. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths);
    0 on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest element.  @raise Invalid_argument on []. *)

val confidence95 : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]); 0 on lists shorter than 2. *)
