let mean = function
  | [] -> 0.0
  | xs -> Num.sum xs /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) ** 2.0) xs in
    Num.sum sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let confidence95 = function
  | [] | [ _ ] -> 0.0
  | xs -> 1.96 *. stddev xs /. sqrt (float_of_int (List.length xs))
