(** Deterministic splittable pseudo-random number generator.

    Every stochastic component of the library (topology generation,
    disruption sampling, demand-pair selection) draws its randomness from a
    value of type {!t} so that experiments are exactly reproducible from a
    single integer seed.  The generator is splitmix64 (Steele, Lea &
    Flood, OOPSLA 2014): a small, fast, well-distributed 64-bit generator
    whose streams can be split into statistically independent substreams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    produce equal streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy and the original then evolve
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream.  Use one split per
    experiment repetition to decouple runs. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian2 : t -> float * float
(** Two independent standard normal deviates from one Box–Muller draw. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs]
    uniformly without replacement (order unspecified). *)
