module Routing = Netrec_flow.Routing
module Oracle = Netrec_flow.Oracle

type report = {
  vertex_repairs : int;
  edge_repairs : int;
  total_repairs : int;
  repair_cost : float;
  satisfied_fraction : float;
  routing : Routing.t;
}

let best_routing ?lp_var_budget inst sol =
  let g = inst.Instance.graph in
  let own = sol.Instance.routing in
  let own_complete =
    own <> Routing.empty
    && Routing.satisfaction ~demands:inst.Instance.demands own >= 1.0 -. 1e-6
    && Instance.valid inst sol
  in
  if own_complete then own
  else begin
    let vertex_ok = Instance.repaired_vertex_ok inst sol in
    let edge_ok = Instance.repaired_edge_ok inst sol in
    let computed =
      Oracle.max_satisfiable ~vertex_ok ~edge_ok ?lp_var_budget
        ~cap:(Graph.capacity g) g inst.Instance.demands
    in
    (* Keep whichever routes more (the solution's own partial routing can
       beat the oracle's greedy fallback). *)
    let own_ok =
      own <> Routing.empty && Instance.valid inst sol
    in
    if own_ok && Routing.total_routed own > Routing.total_routed computed
    then own
    else computed
  end

let assess ?lp_var_budget inst sol =
  let routing = best_routing ?lp_var_budget inst sol in
  { vertex_repairs = Instance.vertex_repairs sol;
    edge_repairs = Instance.edge_repairs sol;
    total_repairs = Instance.total_repairs sol;
    repair_cost = Instance.repair_cost inst sol;
    satisfied_fraction = Routing.satisfaction ~demands:inst.Instance.demands routing;
    routing }

let satisfied_fraction ?lp_var_budget inst sol =
  (assess ?lp_var_budget inst sol).satisfied_fraction
