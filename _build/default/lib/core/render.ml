module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity

type palette = {
  vertex_color : Graph.vertex -> string;
  edge_color : Graph.edge_id -> string;
}

let dot_of inst palette =
  let g = inst.Instance.graph in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph recovery {\n";
  Buffer.add_string buf "  overlap=false;\n  splines=true;\n";
  let endpoint = Commodity.is_endpoint inst.Instance.demands in
  List.iter
    (fun v ->
      let pos =
        match Graph.coord g v with
        | Some (x, y) -> Printf.sprintf " pos=\"%g,%g!\"" x y
        | None -> ""
      in
      let shape = if endpoint v then "box" else "ellipse" in
      Buffer.add_string buf
        (Printf.sprintf
           "  %d [label=\"%s\" shape=%s style=filled fillcolor=\"%s\"%s];\n" v
           (Graph.name g v) shape (palette.vertex_color v) pos))
    (Graph.vertices g);
  Graph.fold_edges
    (fun e () ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%g\" color=\"%s\" penwidth=2];\n"
           e.Graph.u e.Graph.v e.Graph.capacity
           (palette.edge_color e.Graph.id)))
    g ();
  (* Demands as dashed overlay edges. *)
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %d -- %d [style=dashed color=blue label=\"%g\" constraint=false];\n"
           d.Commodity.src d.Commodity.dst d.Commodity.amount))
    inst.Instance.demands;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let working = "#bbbbbb"
let broken = "#f4a6a6"
let repaired = "#7bc77b"

let instance_dot inst =
  let failure = inst.Instance.failure in
  dot_of inst
    { vertex_color =
        (fun v -> if Failure.vertex_broken failure v then broken else working);
      edge_color =
        (fun e -> if Failure.edge_broken failure e then broken else working) }

let solution_dot inst sol =
  let failure = inst.Instance.failure in
  let rv = Hashtbl.create 16 and re = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace rv v ()) sol.Instance.repaired_vertices;
  List.iter (fun e -> Hashtbl.replace re e ()) sol.Instance.repaired_edges;
  dot_of inst
    { vertex_color =
        (fun v ->
          if Hashtbl.mem rv v then repaired
          else if Failure.vertex_broken failure v then broken
          else working);
      edge_color =
        (fun e ->
          if Hashtbl.mem re e then repaired
          else if Failure.edge_broken failure e then broken
          else working) }
