lib/core/evaluate.mli: Instance Netrec_flow
