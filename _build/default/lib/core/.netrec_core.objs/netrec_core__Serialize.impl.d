lib/core/serialize.ml: Array Buffer Fun Graph Instance List Netrec_disrupt Netrec_flow Option Printf String
