lib/core/render.ml: Buffer Graph Hashtbl Instance List Netrec_disrupt Netrec_flow Printf
