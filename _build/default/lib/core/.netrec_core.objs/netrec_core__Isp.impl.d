lib/core/isp.ml: Array Bubble Centrality Dijkstra Float Graph Instance List Logs Maxflow Netrec_disrupt Netrec_flow Unix
