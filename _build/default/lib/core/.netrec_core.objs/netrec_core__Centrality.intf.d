lib/core/centrality.mli: Graph Netrec_flow Paths
