lib/core/instance.mli: Graph Netrec_disrupt Netrec_flow
