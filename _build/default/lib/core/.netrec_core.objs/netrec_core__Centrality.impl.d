lib/core/centrality.ml: Array Graph List Netrec_flow Paths
