lib/core/serialize.mli: Instance
