lib/core/instance.ml: Array Graph List Netrec_disrupt Netrec_flow Option
