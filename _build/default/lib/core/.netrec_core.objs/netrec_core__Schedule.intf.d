lib/core/schedule.mli: Graph Instance
