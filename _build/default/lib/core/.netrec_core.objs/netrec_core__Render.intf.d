lib/core/render.mli: Instance
