lib/core/schedule.ml: Array Dijkstra Graph Instance List Netrec_disrupt Netrec_flow Netrec_util Paths
