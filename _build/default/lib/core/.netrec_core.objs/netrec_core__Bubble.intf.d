lib/core/bubble.mli: Graph Netrec_flow Paths
