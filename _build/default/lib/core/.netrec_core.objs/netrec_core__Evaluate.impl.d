lib/core/evaluate.ml: Graph Instance Netrec_flow
