lib/core/isp.mli: Instance
