lib/core/bubble.ml: Array Float Graph List Maxflow Netrec_flow Paths Traverse
