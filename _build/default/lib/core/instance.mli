(** Recovery-problem instances and solutions.

    An instance is the paper's MinR input (§III): a supply graph, a
    demand graph, the broken sets [(VB, EB)] and per-element repair
    costs.  A solution is a set of repairs plus (when the algorithm
    provides one) an explicit routing. *)

module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
module Routing = Netrec_flow.Routing

type t = {
  graph : Graph.t;
  demands : Commodity.t list;
  failure : Failure.t;
  vertex_cost : float array;  (** [k^v_i], length [Graph.nv] *)
  edge_cost : float array;  (** [k^e_ij], length [Graph.ne] *)
}

val make :
  ?vertex_cost:float array ->
  ?edge_cost:float array ->
  graph:Graph.t ->
  demands:Commodity.t list ->
  failure:Failure.t ->
  unit ->
  t
(** Build an instance; costs default to 1 per element (the paper's
    homogeneous setting).  @raise Invalid_argument on arity mismatches,
    a demand endpoint out of range, or non-positive demand amounts. *)

val feasible_when_repaired : t -> bool
(** Whether the full demand is routable on the {e undamaged} supply graph
    — the precondition for any recovery strategy to exist. *)

type solution = {
  repaired_vertices : Graph.vertex list;
  repaired_edges : Graph.edge_id list;
  routing : Routing.t;  (** may be empty for heuristics without routing *)
}

val empty_solution : solution
(** No repairs, no routing. *)

val repair_cost : t -> solution -> float
(** Total cost of the solution's repairs under the instance's costs. *)

val vertex_repairs : solution -> int
(** Number of repaired vertices (Fig. 4(b) series). *)

val edge_repairs : solution -> int
(** Number of repaired edges (Fig. 4(a) series). *)

val total_repairs : solution -> int
(** Vertices + edges (Figs. 3, 4(c), 5(a), 6(a), 7(b), 9(a) series). *)

val repaired_vertex_ok : t -> solution -> Graph.vertex -> bool
(** Post-recovery availability: a vertex works iff it was never broken or
    it is repaired by the solution. *)

val repaired_edge_ok : t -> solution -> Graph.edge_id -> bool
(** Post-recovery edge availability (both endpoints must also work). *)

val valid : t -> solution -> bool
(** Sanity: every repaired element was actually broken, no duplicates,
    and the routing (if any) fits nominal capacities on the
    post-recovery graph. *)

val repair_all : t -> solution
(** The trivial ALL baseline: repair every broken element. *)

val with_candidate_links :
  t -> (Graph.vertex * Graph.vertex * float * float) list -> t * Graph.edge_id list
(** Model the deployment of {e new} links (paper §III, footnote 1): each
    [(u, v, capacity, install_cost)] becomes a supply edge that starts
    out "broken" with repair cost equal to its installation cost, so
    every algorithm can choose between repairing old infrastructure and
    building new.  Returns the extended instance and the candidate edge
    ids (in input order).  The original instance is unchanged.
    @raise Invalid_argument on out-of-range endpoints. *)
