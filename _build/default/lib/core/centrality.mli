(** Demand-based centrality (paper §IV-B, equation (3)).

    For each demand [(i,j)] the set [P*(i,j)] of first shortest paths that
    cover the demand is estimated by successive Dijkstra runs on residual
    capacities (the paper's runtime approximation); each path [p]
    contributes a fraction [c(p) / sum_q c(q)] of the demand [d_ij] to
    the centrality of its {e interior} vertices.  Lengths follow the
    dynamic repair-aware metric of §IV-D, so already-repaired elements
    attract subsequent flow.

    The computation runs on the {e full} supply graph — broken elements
    included — with current residual capacities, per §IV-C: "the
    centrality calculation considers the original complete supply
    graph". *)

type contribution = {
  demand : Netrec_flow.Commodity.t;
  bundle : Paths.bundle;  (** the estimated [P*] for this demand *)
}

type t = {
  score : float array;  (** [cd(v)] per vertex *)
  contributions : contribution list;  (** one per live demand, in order *)
}

val compute :
  length:(Graph.edge_id -> float) ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  Netrec_flow.Commodity.t list ->
  t
(** Evaluate the metric.  Edges with non-positive residual capacity are
    unusable; demands with zero amount are skipped. *)

val best : t -> Graph.vertex option
(** The vertex [v_BC] with the highest strictly positive centrality
    (ties broken towards the smallest id), or [None] when every score is
    zero — i.e. no demand has any interior shortest-path vertex left. *)

val contributors :
  Graph.t -> t -> Graph.vertex -> contribution list
(** [C(v)]: the demands whose [P*] bundle passes through [v] as an
    interior vertex (paper §IV-C). *)

val paths_capacity_through :
  Graph.t -> contribution -> Graph.vertex -> float
(** [sum over p in P*(i,j)|v of c(p)] — the numerator capacity of the
    split-selection rule. *)
