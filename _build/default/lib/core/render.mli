(** Graphviz rendering of instances and repair plans.

    Produces DOT text (viewable with [dot -Tsvg]) showing the supply
    graph with the disruption and a solution overlaid: working elements
    in grey, broken-and-abandoned in light red, repaired in green, demand
    endpoints as labelled boxes.  Coordinates (when the graph is
    embedded) become fixed node positions so geographic topologies render
    geographically. *)

val instance_dot : Instance.t -> string
(** The disrupted instance without a solution. *)

val solution_dot : Instance.t -> Instance.solution -> string
(** Instance plus repair overlay. *)
