(** Progressive recovery scheduling.

    The paper computes {e what} to repair; in practice crews repair a few
    elements at a time and operators care how fast service comes back
    (the throughput-over-time objective of Wang, Qiao & Yu — the paper's
    reference [32] — discussed in §II).  This module extends the library
    with that dimension: given a recovery solution, order its repairs to
    maximize the satisfied demand after every prefix.

    The greedy ordering picks, at each step, the repair element whose
    addition yields the largest immediate gain in satisfiable demand
    (ties broken by repair cost, then id); between gains it prefers
    elements that complete working paths.  This is a natural baseline for
    the progressive-recovery extension the paper leaves as future work. *)

type step = {
  element : [ `Vertex of Graph.vertex | `Edge of Graph.edge_id ];
  satisfied_after : float;
      (** fraction of total demand satisfiable once this repair (and all
          previous ones) is done *)
}

type t = {
  steps : step list;  (** repairs in execution order *)
  auc : float;
      (** area under the satisfied-demand curve, normalized to [0,1] —
          1 means everything was satisfied from the first step *)
}

val greedy : Instance.t -> Instance.solution -> t
(** Order the solution's repairs greedily by marginal satisfied demand.
    The solution should be feasible; unordered leftovers (zero marginal
    gain) are appended by cost. *)

val in_order :
  Instance.t ->
  [ `Vertex of Graph.vertex | `Edge of Graph.edge_id ] list ->
  t
(** Evaluate a caller-chosen order (e.g. to compare against {!greedy}). *)

type stage = {
  elements : [ `Vertex of Graph.vertex | `Edge of Graph.edge_id ] list;
      (** repairs executed in this stage (at most the per-stage budget) *)
  satisfied : float;  (** fraction served once the stage completes *)
}

val staged : per_stage:int -> Instance.t -> Instance.solution -> stage list
(** Multi-stage recovery under a per-stage repair budget — the setting of
    Wang, Qiao & Yu (the paper's reference [32]), where crews complete a
    fixed number of repairs per day.  Repairs are taken in {!greedy}
    order and chunked into stages of [per_stage] elements; each stage
    reports the demand servable once it completes.
    @raise Invalid_argument when [per_stage < 1]. *)
