(** Bubble detection and the prune action (paper Def. 2 and Thm. 3).

    A bubble for demand [h] is a vertex set [S] containing no demand
    endpoint other than [s_h, t_h] such that every {e supply-graph} edge
    leaving [S] is incident to [s_h] or [t_h].  Pruning routes
    [min (f*, d_h)] units over working paths inside a bubble; by Thm. 3
    this never compromises routability nor worsens the final repair
    count.

    Detection follows the paper's modified BFS — explore from [s_h],
    discarding other demands' endpoints — hardened into an iterative
    shrink: an interior vertex adjacent (in the full graph) to a vertex
    outside the candidate set violates the cut condition and is removed,
    until a fixpoint.  The working paths used for routing live inside the
    surviving set. *)

val find :
  Graph.t ->
  demands:Netrec_flow.Commodity.t list ->
  Netrec_flow.Commodity.t ->
  Graph.vertex list option
(** [find g ~demands h] returns a bubble for [h] — computed on the full
    supply graph, broken elements included, since Def. 2's cut condition
    ranges over all of [E] — containing both endpoints, or [None].
    [demands] is the full current demand list (used for the "no other
    endpoint" condition); [h] itself may appear in it. *)

type prune = {
  amount : float;  (** [min (f*, d_h)], > 0 *)
  paths : (Paths.path * float) list;  (** working paths carrying it *)
}

val prune :
  working_vertex:(Graph.vertex -> bool) ->
  working_edge:(Graph.edge_id -> bool) ->
  cap:(Graph.edge_id -> float) ->
  Graph.t ->
  demands:Netrec_flow.Commodity.t list ->
  Netrec_flow.Commodity.t ->
  prune option
(** Attempt to prune demand [h]: find a bubble, compute the max working
    flow inside it between the endpoints, and decompose it into paths.
    [None] when no bubble exists or the bubble carries no flow. *)
