(** Plain-text serialization of recovery instances.

    A line-oriented sectioned format so instances can be saved from one
    tool run and re-analyzed by another (or shipped as bug reports):

    {v
    [graph]
    <u> <v> <capacity>          one line per edge
    [coords]                    optional, one "<x> <y>" line per vertex
    [names]                     optional, one name per vertex
    [demands]
    <src> <dst> <amount>
    [broken_vertices]
    <id> ...
    [broken_edges]
    <id> ...
    [vertex_costs]              optional, one float per vertex
    [edge_costs]                optional, one float per edge
    v}

    Sections may appear in any order; unknown sections are rejected. *)

val to_string : Instance.t -> string
(** Serialize an instance (always writes every section). *)

val of_string : string -> Instance.t
(** Parse.  @raise Failure on malformed input. *)

val save : string -> Instance.t -> unit
(** Write {!to_string} to a file. *)

val load : string -> Instance.t
(** Read and {!of_string} a file.  @raise Sys_error / Failure. *)
