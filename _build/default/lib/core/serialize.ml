module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity

let to_string inst =
  let g = inst.Instance.graph in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "[graph]";
  Graph.fold_edges
    (fun e () -> line "%d %d %.12g" e.Graph.u e.Graph.v e.Graph.capacity)
    g ();
  if Graph.has_coords g then begin
    line "[coords]";
    List.iter
      (fun v ->
        let x, y = Option.get (Graph.coord g v) in
        line "%.12g %.12g" x y)
      (Graph.vertices g)
  end;
  line "[names]";
  List.iter (fun v -> line "%s" (Graph.name g v)) (Graph.vertices g);
  line "[demands]";
  List.iter
    (fun d -> line "%d %d %.12g" d.Commodity.src d.Commodity.dst d.Commodity.amount)
    inst.Instance.demands;
  line "[broken_vertices]";
  List.iter (fun v -> line "%d" v)
    (Failure.broken_vertex_list inst.Instance.failure);
  line "[broken_edges]";
  List.iter (fun e -> line "%d" e)
    (Failure.broken_edge_list inst.Instance.failure);
  line "[vertex_costs]";
  Array.iter (fun c -> line "%.12g" c) inst.Instance.vertex_cost;
  line "[edge_costs]";
  Array.iter (fun c -> line "%.12g" c) inst.Instance.edge_cost;
  Buffer.contents buf

type section = {
  mutable edges : (int * int * float) list;  (* reversed *)
  mutable coords : (float * float) list;
  mutable names : string list;
  mutable demands : (int * int * float) list;
  mutable broken_v : int list;
  mutable broken_e : int list;
  mutable vcosts : float list;
  mutable ecosts : float list;
}

let of_string text =
  let acc =
    { edges = []; coords = []; names = []; demands = []; broken_v = [];
      broken_e = []; vcosts = []; ecosts = [] }
  in
  let current = ref "" in
  let fail fmt = Printf.ksprintf failwith fmt in
  let parse_floats line n =
    match
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    with
    | parts when List.length parts = n -> (
      try List.map float_of_string parts
      with _ -> fail "Serialize: bad numeric line %S" line)
    | _ -> fail "Serialize: expected %d fields in %S" n line
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else if line.[0] = '[' then current := line
         else
           match !current with
           | "[graph]" -> (
             match parse_floats line 3 with
             | [ u; v; c ] ->
               acc.edges <- (int_of_float u, int_of_float v, c) :: acc.edges
             | _ -> assert false)
           | "[coords]" -> (
             match parse_floats line 2 with
             | [ x; y ] -> acc.coords <- (x, y) :: acc.coords
             | _ -> assert false)
           | "[names]" -> acc.names <- line :: acc.names
           | "[demands]" -> (
             match parse_floats line 3 with
             | [ s; t; a ] ->
               acc.demands <- (int_of_float s, int_of_float t, a) :: acc.demands
             | _ -> assert false)
           | "[broken_vertices]" ->
             acc.broken_v <- int_of_string line :: acc.broken_v
           | "[broken_edges]" ->
             acc.broken_e <- int_of_string line :: acc.broken_e
           | "[vertex_costs]" -> acc.vcosts <- float_of_string line :: acc.vcosts
           | "[edge_costs]" -> acc.ecosts <- float_of_string line :: acc.ecosts
           | "" -> fail "Serialize: content before any section: %S" line
           | s -> fail "Serialize: unknown section %s" s);
  let edges = List.rev acc.edges in
  if edges = [] then fail "Serialize: no [graph] section";
  (* Vertex count: largest endpoint, or the [names]/[coords] length when
     given (covers isolated trailing vertices). *)
  let n =
    List.fold_left (fun m (u, v, _) -> max m (max u v + 1)) 0 edges
    |> max (List.length acc.names)
    |> max (List.length acc.coords)
  in
  let names =
    match List.rev acc.names with
    | [] -> None
    | ns when List.length ns = n -> Some (Array.of_list ns)
    | _ -> fail "Serialize: [names] arity mismatch"
  in
  let coords =
    match List.rev acc.coords with
    | [] -> None
    | cs when List.length cs = n -> Some (Array.of_list cs)
    | _ -> fail "Serialize: [coords] arity mismatch"
  in
  let graph = Graph.make ?names ?coords ~n ~edges () in
  let failure =
    Failure.of_lists graph ~vertices:acc.broken_v ~edges:acc.broken_e
  in
  let demands =
    (* acc.demands is reversed; rev_map restores input order. *)
    List.rev_map
      (fun (s, t, a) -> Commodity.make ~src:s ~dst:t ~amount:a)
      acc.demands
  in
  let vertex_cost =
    match List.rev acc.vcosts with
    | [] -> None
    | cs when List.length cs = n -> Some (Array.of_list cs)
    | _ -> fail "Serialize: [vertex_costs] arity mismatch"
  in
  let edge_cost =
    match List.rev acc.ecosts with
    | [] -> None
    | cs when List.length cs = Graph.ne graph -> Some (Array.of_list cs)
    | _ -> fail "Serialize: [edge_costs] arity mismatch"
  in
  Instance.make ?vertex_cost ?edge_cost ~graph ~demands ~failure ()

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic) |> of_string)
