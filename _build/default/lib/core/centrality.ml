module Commodity = Netrec_flow.Commodity

type contribution = { demand : Commodity.t; bundle : Paths.bundle }

type t = { score : float array; contributions : contribution list }

let compute ~length ~cap g demands =
  let score = Array.make (Graph.nv g) 0.0 in
  let live = List.filter (fun d -> d.Commodity.amount > 1e-9) demands in
  let contributions =
    List.map
      (fun demand ->
        let bundle =
          Paths.shortest_bundle ~length ~cap ~demand:demand.Commodity.amount g
            demand.Commodity.src demand.Commodity.dst
        in
        let total_cap =
          List.fold_left (fun acc (_, c) -> acc +. c) 0.0 bundle.Paths.paths
        in
        if total_cap > 1e-12 then
          List.iter
            (fun (p, c) ->
              let weight = c /. total_cap *. demand.Commodity.amount in
              let vs = Paths.vertices_of g demand.Commodity.src p in
              List.iter
                (fun v ->
                  if v <> demand.Commodity.src && v <> demand.Commodity.dst
                  then score.(v) <- score.(v) +. weight)
                vs)
            bundle.Paths.paths;
        { demand; bundle })
      live
  in
  { score; contributions }

let best t =
  let best_v = ref (-1) in
  let best_s = ref 1e-12 in
  Array.iteri
    (fun v s ->
      if s > !best_s then begin
        best_v := v;
        best_s := s
      end)
    t.score;
  if !best_v < 0 then None else Some !best_v

let through_interior g contribution v =
  let { demand; bundle } = contribution in
  List.exists
    (fun (p, _) ->
      Paths.through g demand.Commodity.src demand.Commodity.dst v p)
    bundle.Paths.paths

let contributors g t v =
  List.filter (fun c -> through_interior g c v) t.contributions

let paths_capacity_through g contribution v =
  let { demand; bundle } = contribution in
  List.fold_left
    (fun acc (p, c) ->
      if Paths.through g demand.Commodity.src demand.Commodity.dst v p then
        acc +. c
      else acc)
    0.0 bundle.Paths.paths
