(* Progressive recovery: a repair plan is executed one element at a
   time — in what order should the crews work so that service comes back
   as fast as possible?

   ISP decides WHAT to repair (minimum cost); Schedule.greedy then orders
   those repairs to maximize the satisfied demand after every step (the
   throughput-over-time concern of Wang, Qiao & Yu, the paper's
   reference [32]).  The example prints the recovery curve for the
   greedy order next to the solver's arbitrary emission order.

   Run with:  dune exec examples/progressive_recovery.exe *)

module G = Netrec_graph.Graph
module Rng = Netrec_util.Rng
module Failure = Netrec_disrupt.Failure
open Netrec_core

let bar frac =
  let width = 30 in
  let full = int_of_float (frac *. float_of_int width) in
  String.make full '#' ^ String.make (width - full) '.'

let () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 7 in
  let demands = Netrec_topo.Demand_gen.far_pairs ~rng ~count:3 ~amount:10.0 g in
  let failure = Netrec_disrupt.Models.gaussian ~rng ~variance:80.0 g in
  let inst = Instance.make ~graph:g ~demands ~failure () in

  let sol, _ = Isp.solve inst in
  Printf.printf "ISP plan: %d repairs for %d critical services\n\n"
    (Instance.total_repairs sol)
    (List.length demands);

  let sched = Schedule.greedy inst sol in
  Printf.printf "Greedy execution order (satisfied demand after each step):\n";
  List.iteri
    (fun i step ->
      let what =
        match step.Schedule.element with
        | `Vertex v -> Printf.sprintf "node %s" (G.name g v)
        | `Edge e ->
          let u, v = G.endpoints g e in
          Printf.sprintf "link %s-%s" (G.name g u) (G.name g v)
      in
      Printf.printf "  %2d. %-32s %s %5.1f%%\n" (i + 1) what
        (bar step.Schedule.satisfied_after)
        (100.0 *. step.Schedule.satisfied_after))
    sched.Schedule.steps;
  Printf.printf "\narea under the recovery curve: %.3f (greedy order)\n"
    sched.Schedule.auc;

  let solver_order =
    List.map (fun v -> `Vertex v) sol.Instance.repaired_vertices
    @ List.map (fun e -> `Edge e) sol.Instance.repaired_edges
  in
  let plain = Schedule.in_order inst solver_order in
  Printf.printf "area under the recovery curve: %.3f (solver order)\n"
    plain.Schedule.auc
