(* Scalability study: how does ISP behave as the supply network becomes
   denser?  Mirrors the paper's Erdos-Renyi scenario (§VII-B): 100-node
   random graphs of growing edge probability, connectivity-only demands
   (5 unit pairs, huge capacities), complete destruction.

   For every density the example reports ISP's repairs and runtime next
   to the EXACT optimum from the Steiner-forest dynamic program, showing
   both the approximation quality and the planarity effect the paper
   discusses (the ISP/OPT gap widens on dense non-planar graphs).

   Run with:  dune exec examples/scalability_study.exe *)

module Rng = Netrec_util.Rng
module G = Netrec_graph.Graph
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
open Netrec_core
module H = Netrec_heuristics

let () =
  let master = Rng.create 77 in
  Printf.printf "%4s  %6s  %9s  %5s  %9s  %5s\n" "p" "edges" "ISP" "t(s)"
    "OPT(DP)" "t(s)";
  List.iter
    (fun p ->
      let rec connected_graph tries =
        if tries = 0 then failwith "no connected G(100,p) found"
        else begin
          let g =
            Netrec_graph.Generate.erdos_renyi ~rng:(Rng.split master) ~n:100
              ~p ~capacity:1000.0
          in
          if Netrec_graph.Traverse.is_connected g then g
          else connected_graph (tries - 1)
        end
      in
      let g = connected_graph 50 in
      let demands =
        Netrec_topo.Demand_gen.distinct_endpoint_pairs ~rng:(Rng.split master)
          ~count:5 ~amount:1.0 g
      in
      let inst =
        Instance.make ~graph:g ~demands ~failure:(Failure.complete g) ()
      in
      let t0 = Unix.gettimeofday () in
      let isp, _ = Isp.solve inst in
      let isp_t = Unix.gettimeofday () -. t0 in
      let pairs =
        List.map (fun d -> (d.Commodity.src, d.Commodity.dst)) demands
      in
      let t0 = Unix.gettimeofday () in
      let opt = H.Exact_forest.optimal_total_repairs g ~pairs in
      let opt_t = Unix.gettimeofday () -. t0 in
      Printf.printf "%4.1f  %6d  %9d  %5.2f  %9s  %5.2f\n%!" p (G.ne g)
        (Instance.total_repairs isp) isp_t
        (match opt with Some r -> string_of_int r | None -> "-")
        opt_t)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
