(* Building new infrastructure: the paper's model (§III, footnote 1)
   covers not just repairing broken elements but deploying NEW links —
   a candidate link is simply a "broken" supply edge whose repair cost is
   its installation cost.

   The scenario: a disaster severs the single corridor between two
   regions.  The operator can either repair the old corridor (several
   expensive segments) or lay one new long-haul link (e.g. a temporary
   microwave hop).  ISP weighs both options inside one optimization.

   Run with:  dune exec examples/build_new_links.exe *)

module G = Netrec_graph.Graph
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
open Netrec_core

let () =
  (* Two 3-node regions joined by a 3-segment corridor (7 nodes total):
     0-1-2   corridor: 2-3-4   region B: 4-5-6 *)
  let g =
    G.make ~n:7
      ~edges:
        [ (0, 1, 20.0); (1, 2, 20.0);      (* region A *)
          (2, 3, 20.0); (3, 4, 20.0);      (* the corridor *)
          (4, 5, 20.0); (5, 6, 20.0) ]     (* region B *)
      ()
  in
  let demands = [ Commodity.make ~src:0 ~dst:6 ~amount:10.0 ] in
  (* The disaster destroys the corridor (relay 3 and both segments). *)
  let failure = Failure.of_lists g ~vertices:[ 3 ] ~edges:[ 2; 3 ] in
  let base = Instance.make ~graph:g ~demands ~failure () in
  let sol_repair, _ = Isp.solve base in
  Printf.printf "repair-only plan: %d elements, cost %.1f\n"
    (Instance.total_repairs sol_repair)
    (Instance.repair_cost base sol_repair);

  (* Option B: offer a direct temporary link 2-4 (capacity 15).  First at
     a price where repairing wins, then at a bargain price. *)
  List.iter
    (fun install_cost ->
      let inst, ids =
        Instance.with_candidate_links base [ (2, 4, 15.0, install_cost) ]
      in
      let sol, _ = Isp.solve inst in
      let built = List.exists (fun e -> List.mem e ids) sol.Instance.repaired_edges in
      Printf.printf
        "with a candidate 2-4 link at cost %.1f: %s (total cost %.1f, %.0f%% served)\n"
        install_cost
        (if built then "BUILD the new link" else "repair the old corridor")
        (Instance.repair_cost inst sol)
        (100.0 *. Evaluate.satisfied_fraction inst sol))
    [ 10.0; 1.5 ]
