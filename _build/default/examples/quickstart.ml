(* Quickstart: build a small supply network, destroy part of it, and ask
   ISP for the cheapest set of repairs that restores two critical flows.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Netrec_graph.Graph
module Failure = Netrec_disrupt.Failure
module Commodity = Netrec_flow.Commodity
module Routing = Netrec_flow.Routing
open Netrec_core

let () =
  (* A 3x3 grid city: every street carries up to 10 units. *)
  let g = Netrec_graph.Generate.grid ~width:3 ~height:3 ~capacity:10.0 in

  (* Two mission-critical services: corner to corner (vertex ids are
     row-major: 0 is north-west, 8 is south-east, 2 north-east, 6
     south-west). *)
  let demands =
    [ Commodity.make ~src:0 ~dst:8 ~amount:6.0;
      Commodity.make ~src:2 ~dst:6 ~amount:6.0 ]
  in

  (* The disaster takes out the city center and some streets around it:
     vertex 4 is the middle of the grid. *)
  let failure =
    Failure.of_lists g ~vertices:[ 4 ]
      ~edges:
        (List.filteri (fun i _ -> i mod 3 = 0)
           (List.map (fun e -> e.Graph.id) (Graph.edges g)))
  in
  let inst = Instance.make ~graph:g ~demands ~failure () in
  let bv, be = Failure.counts failure in
  Printf.printf "disrupted: %d nodes, %d edges broken\n" bv be;

  (* ISP decides what to repair and how to route the demand afterwards. *)
  let solution, stats = Isp.solve inst in
  Printf.printf "ISP repaired %d nodes and %d edges in %d iterations\n"
    (Instance.vertex_repairs solution)
    (Instance.edge_repairs solution)
    stats.Isp.iterations;
  Printf.printf "  nodes: %s\n"
    (String.concat ", "
       (List.map string_of_int solution.Instance.repaired_vertices));
  Printf.printf "  edges: %s\n"
    (String.concat ", "
       (List.map
          (fun e ->
            let u, v = Graph.endpoints g e in
            Printf.sprintf "%d-%d" u v)
          solution.Instance.repaired_edges));

  (* The solution carries an explicit routing for every demand. *)
  List.iter
    (fun a ->
      Printf.printf "demand %d->%d: %.1f units over %d path(s)\n"
        a.Routing.demand.Commodity.src a.Routing.demand.Commodity.dst
        (Routing.routed_amount a)
        (List.length a.Routing.paths))
    solution.Instance.routing;

  (* And the evaluator confirms there is no demand loss. *)
  let report = Evaluate.assess inst solution in
  Printf.printf "satisfied demand: %.0f%%\n"
    (100.0 *. report.Evaluate.satisfied_fraction)
