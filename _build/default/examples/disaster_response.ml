(* Disaster response: a geographically correlated disruption (think
   hurricane or earthquake) hits the Bell-Canada-like backbone near its
   barycenter.  Mission-critical services — government, hospitals,
   emergency control — must be restored with as few repair crews as
   possible.

   The example compares ISP with the SRT and greedy baselines on the same
   event, showing the paper's headline effect: ISP repairs little AND
   loses no demand, while cheaper-looking heuristics strand traffic.

   Run with:  dune exec examples/disaster_response.exe *)

module G = Netrec_graph.Graph
module Rng = Netrec_util.Rng
module Failure = Netrec_disrupt.Failure
module Models = Netrec_disrupt.Models
module Commodity = Netrec_flow.Commodity
open Netrec_core
module H = Netrec_heuristics

let () =
  let g = Netrec_topo.Bell_canada.graph () in
  let rng = Rng.create 2024 in

  (* Critical services: four far-apart province-to-province links, each
     needing 10 units of capacity (e.g. emergency coordination video +
     telephony trunks). *)
  let demands = Netrec_topo.Demand_gen.far_pairs ~rng ~count:4 ~amount:10.0 g in
  Printf.printf "Mission-critical services:\n";
  List.iter
    (fun d ->
      Printf.printf "  %-13s -> %-13s %g units\n" (G.name g d.Commodity.src)
        (G.name g d.Commodity.dst) d.Commodity.amount)
    demands;

  (* The event: a wide Gaussian disruption centered on the network's
     barycenter (around the Manitoba/Ontario border on this map). *)
  let failure = Models.gaussian ~rng ~variance:60.0 g in
  let bv, be = Failure.counts failure in
  Printf.printf "\nDisaster: %d nodes and %d links destroyed (%d%% of the network)\n\n"
    bv be
    (100 * (bv + be) / (G.nv g + G.ne g));

  let inst = Instance.make ~graph:g ~demands ~failure () in

  let show name solve =
    let t0 = Unix.gettimeofday () in
    let sol = solve () in
    let dt = Unix.gettimeofday () -. t0 in
    let report = Evaluate.assess inst sol in
    Printf.printf "%-8s %3d repairs  %5.1f%% demand served  (%.2f s)\n" name
      report.Evaluate.total_repairs
      (100.0 *. report.Evaluate.satisfied_fraction)
      dt;
    sol
  in
  let isp = show "ISP" (fun () -> fst (Isp.solve inst)) in
  let _ = show "SRT" (fun () -> H.Srt.solve inst) in
  let _ = show "GRD-COM" (fun () -> H.Greedy.grd_com inst) in
  let _ = show "GRD-NC" (fun () -> H.Greedy.grd_nc inst) in

  (* Print the actual dispatch plan for the winning strategy. *)
  Printf.printf "\nISP dispatch plan:\n";
  List.iter
    (fun v -> Printf.printf "  repair node %s\n" (G.name g v))
    isp.Instance.repaired_vertices;
  List.iter
    (fun e ->
      let u, v = G.endpoints g e in
      Printf.printf "  repair link %s - %s\n" (G.name g u) (G.name g v))
    isp.Instance.repaired_edges
