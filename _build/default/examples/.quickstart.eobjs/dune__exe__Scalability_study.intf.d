examples/scalability_study.mli:
