examples/progressive_recovery.ml: Instance Isp List Netrec_core Netrec_disrupt Netrec_graph Netrec_topo Netrec_util Printf Schedule String
