examples/build_new_links.ml: Evaluate Instance Isp List Netrec_core Netrec_disrupt Netrec_flow Netrec_graph Printf
