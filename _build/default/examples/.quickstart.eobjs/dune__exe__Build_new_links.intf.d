examples/build_new_links.mli:
