examples/disaster_response.mli:
