examples/quickstart.mli:
