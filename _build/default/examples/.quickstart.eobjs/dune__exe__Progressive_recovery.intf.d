examples/progressive_recovery.mli:
