examples/scalability_study.ml: Instance Isp List Netrec_core Netrec_disrupt Netrec_flow Netrec_graph Netrec_heuristics Netrec_topo Netrec_util Printf Unix
